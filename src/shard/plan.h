// Spatial partition of one layout for distributed analysis: a K x L
// grid of half-open, mutually disjoint shard *cores* tiling the layout
// bbox, each expanded by one shared *halo* into the shard's hydration
// *window*. Every unit the flow outsources (a min-width morphology
// window, a pattern capture site, a litho tile) reads only geometry
// within a bounded distance of its core, so a worker holding layer
// geometry clipped to its window reproduces the unit byte for byte.
//
// Halo derivation (shard_halo): the largest interaction distance of any
// outsourced unit —
//   * litho: a simulation tile is routed to the shard whose core holds
//     its center, so the worker window must cover tile/2 (center to
//     tile edge) plus the 6-sigma optical halo around the tile;
//   * patterns: a capture window reaches at most the set radius from
//     its anchor; the standard deck's radii derive from the tech
//     (8*m1_width and 2*(via_size + via_enclosure_end));
//   * min-width DRC: the opening morphology has influence radius ~w,
//     bounded by the deck's largest width term (wide_width).
// plus a small slack so boundary arithmetic never sits exactly on the
// influence radius.
#pragma once

#include "geometry/rect.h"
#include "layout/tech.h"

#include <cstddef>
#include <vector>

namespace dfm::shard {

/// The halo (see file comment) for a flow over `tech` with litho tile
/// edge `litho_tile` and optical sigma `sigma`.
Coord shard_halo(const Tech& tech, Coord litho_tile, Coord sigma);

struct ShardPlan {
  Rect extent;   // the layout bbox the plan partitions
  Coord halo = 0;
  int nx = 0, ny = 0;          // grid shape, nx * ny == cores.size()
  std::vector<Rect> cores;     // row-major, half-open, disjoint tiling
  std::vector<Rect> windows;   // cores[i].expanded(halo)

  std::size_t size() const { return cores.size(); }

  /// The shard whose core owns point `p` (half-open containment; every
  /// layout point has exactly one owner); -1 outside the extent.
  int owner(const Point& p) const;

  /// Shards whose window intersects `r` — the recipients of an edit.
  std::vector<std::size_t> windows_overlapping(const Rect& r) const;

  /// Partitions `bbox` into `shards` cores. The grid factorization
  /// follows the bbox aspect ratio (wider than tall gets more columns),
  /// chosen deterministically; integer splits distribute the remainder
  /// to the leading rows/columns. `shards` is clamped to >= 1.
  static ShardPlan make(const Rect& bbox, int shards, Coord halo);
};

}  // namespace dfm::shard
