#include "shard/remote_backend.h"

#include "core/delta.h"
#include "core/stream_source.h"
#include "core/telemetry.h"
#include "shard/local_backend.h"
#include "shard/wire.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>

namespace dfm::shard {
namespace {

using service::Json;

const char* fast_to_string(LithoFastMode m) {
  switch (m) {
    case LithoFastMode::kAuto:
      return "auto";
    case LithoFastMode::kFft:
      return "fft";
    case LithoFastMode::kDirect:
      return "direct";
    case LithoFastMode::kOff:
      return "off";
  }
  return "auto";
}

Json open_request(const RemoteShardConfig& config, const Rect& core,
                  const Rect& window) {
  Json::Object req;
  req["op"] = Json("shard_open");
  req["path"] = Json(config.layout_path);
  req["core"] = rect_to_json(core);
  req["window"] = rect_to_json(window);
  req["tech"] = tech_to_json(config.worker.tech);
  req["model"] = model_to_json(config.worker.model);
  req["litho_tile"] = Json(static_cast<std::int64_t>(config.worker.litho_tile));
  req["litho_edge_tolerance"] =
      Json(static_cast<std::int64_t>(config.worker.litho_edge_tolerance));
  req["litho_fast"] = Json(fast_to_string(config.worker.litho_fast));
  req["threads"] = Json(static_cast<std::int64_t>(config.worker.threads));
  return Json(std::move(req));
}

}  // namespace

pid_t spawn_shard_worker(const std::string& binary,
                         const std::string& socket_path,
                         const std::string& log_path, unsigned threads,
                         const std::string& trace_out) {
  // Build argv before forking: the child must stick to async-signal-safe
  // calls (the coordinator may have pool threads holding allocator locks
  // at fork time).
  const std::string threads_s = std::to_string(threads);
  std::vector<const char*> argv = {binary.c_str(),   "shard-serve",
                                   "--socket",       socket_path.c_str(),
                                   "--threads",      threads_s.c_str(),
                                   "--once"};
  if (!trace_out.empty()) {
    argv.push_back("--trace-out");
    argv.push_back(trace_out.c_str());
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("shard: fork: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    const int log = ::open(log_path.c_str(),
                           O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (log >= 0) {
      ::dup2(log, STDOUT_FILENO);
      ::dup2(log, STDERR_FILENO);
      ::close(log);
    }
    ::execv(binary.c_str(), const_cast<char* const*>(argv.data()));
    ::_exit(127);
  }
  return pid;
}

service::ServiceClient connect_shard_worker(const std::string& path,
                                            pid_t pid, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::chrono::milliseconds backoff(5);
  for (;;) {
    try {
      return service::ServiceClient::connect_unix(path);
    } catch (const service::ProtocolError&) {
      // Socket not bound yet (or worker died). Distinguish the two.
    }
    int status = 0;
    if (pid > 0 && ::waitpid(pid, &status, WNOHANG) == pid) {
      throw std::runtime_error("shard: worker for " + path +
                               " exited before accepting (status " +
                               std::to_string(status) + ")");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("shard: timed out waiting for worker socket " +
                               path);
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
  }
}

std::string self_executable_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    throw std::runtime_error("shard: cannot resolve /proc/self/exe");
  }
  buf[n] = '\0';
  return std::string(buf);
}

std::string make_shard_scratch_dir(const std::string& base) {
  std::string root = base;
  if (root.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    root = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
  }
  std::string tmpl = root + "/dfmkit-shard-XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    throw std::runtime_error("shard: mkdtemp " + tmpl + ": " +
                             std::strerror(errno));
  }
  return tmpl;
}

Rect shard_extent_of(const std::string& layout_path) {
  const std::shared_ptr<const SnapshotSource> src =
      open_stream_source(layout_path);
  Rect extent = Rect::empty();
  for (const LayerKey k : LayoutSnapshot::standard_flow_layers()) {
    extent = extent.join(src->layer_bbox(k));
  }
  return extent;
}

RemoteShardBackend::RemoteShardBackend(const Rect& extent,
                                       RemoteShardConfig config)
    : config_(std::move(config)) {
  plan_ = ShardPlan::make(extent, config_.shards,
                          shard_halo(config_.worker.tech, config_.worker.litho_tile,
                                     config_.worker.model.sigma));
  try {
    for (std::size_t s = 0; s < plan_.size(); ++s) {
      ShardProcess p;
      p.socket_path =
          config_.socket_dir + "/shard-" + std::to_string(s) + ".sock";
      const std::string log =
          config_.socket_dir + "/shard-" + std::to_string(s) + ".log";
      const std::string trace =
          config_.trace_dir.empty()
              ? std::string()
              : config_.trace_dir + "/shard-" + std::to_string(s) +
                    ".trace.json";
      p.pid = spawn_shard_worker(config_.binary, p.socket_path, log,
                                 config_.worker.threads, trace);
      procs_.push_back(p);
    }
    for (std::size_t s = 0; s < plan_.size(); ++s) {
      service::ServiceClient c = connect_shard_worker(
          procs_[s].socket_path, procs_[s].pid, config_.spawn_timeout_s);
      const Json& hello = c.hello();
      if (hello.get_string("server", "") != "dfmkit-shard" ||
          hello.get_int("protocol", 0) != service::kProtocolVersion) {
        throw std::runtime_error("shard: worker " + procs_[s].socket_path +
                                 " spoke the wrong protocol");
      }
      c.set_max_frame_bytes(kShardMaxFrameBytes);
      c.call_ok(open_request(config_, plan_.cores[s], plan_.windows[s]));
      clients_.push_back(std::move(c));
    }
  } catch (...) {
    shutdown_workers();
    throw;
  }
}

RemoteShardBackend::~RemoteShardBackend() { shutdown_workers(); }

void RemoteShardBackend::shutdown_workers() noexcept {
  for (service::ServiceClient& c : clients_) {
    if (!c.connected()) continue;
    try {
      Json::Object req;
      req["op"] = Json("shutdown");
      c.call(Json(std::move(req)));
    } catch (...) {
    }
    c.close();
  }
  clients_.clear();
  for (const ShardProcess& p : procs_) {
    if (p.pid > 0) ::waitpid(p.pid, nullptr, 0);
  }
  procs_.clear();
}

Json RemoteShardBackend::call(std::size_t w, Json req) {
  return clients_[w].call_ok(std::move(req));
}

std::vector<Json> RemoteShardBackend::call_many(
    const std::vector<std::size_t>& targets,
    const std::vector<Json>& requests) {
  std::vector<Json> responses(targets.size());
  std::vector<char> failed(targets.size(), 0);
  std::vector<std::thread> threads;
  threads.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    threads.emplace_back([this, i, &targets, &requests, &responses, &failed] {
      try {
        responses[i] = call(targets[i], requests[i]);
      } catch (...) {
        failed[i] = 1;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const char f : failed) {
    if (f != 0) {
      // A worker died or misbehaved mid-batch: stop accelerating for
      // good (workers may now disagree with the coordinator) and let
      // the flow compute everything locally.
      degraded_ = true;
      return {};
    }
  }
  return responses;
}

bool RemoteShardBackend::shard_drc(const std::vector<Rule>& rules,
                                   std::vector<Region>* bad2x,
                                   std::vector<char>* handled) {
  if (degraded_) return false;
  TELEM_SPAN("shard/drc_remote");
  Json::Array jrules;
  jrules.reserve(rules.size());
  for (const Rule& r : rules) jrules.push_back(rule_to_json(r));
  std::vector<std::size_t> targets;
  std::vector<Json> requests;
  for (std::size_t s = 0; s < plan_.size(); ++s) {
    Json::Object req;
    req["op"] = Json("shard_drc");
    req["rules"] = Json(jrules);
    targets.push_back(s);
    requests.push_back(Json(std::move(req)));
  }
  const std::vector<Json> responses = call_many(targets, requests);
  if (responses.empty()) return false;
  std::vector<Region> stitched(rules.size());
  try {
    for (const Json& resp : responses) {
      const Json::Array& per_rule = resp.find("bad2x")->as_array();
      if (per_rule.size() != rules.size()) {
        throw service::JsonError("bad2x: wrong arity");
      }
      for (std::size_t i = 0; i < rules.size(); ++i) {
        // Named: rects() references the Region's storage, and a
        // temporary would die before the loop body ran.
        const Region piece = region_from_json(per_rule[i]);
        for (const Rect& b : piece.rects()) {
          stitched[i].add(b);
        }
      }
    }
  } catch (const std::exception&) {
    degraded_ = true;
    return false;
  }
  for (std::size_t i = 0; i < rules.size(); ++i) {
    (*bad2x)[i] = std::move(stitched[i]);
    (*handled)[i] = 1;
  }
  return true;
}

bool RemoteShardBackend::shard_match(
    std::size_t set_index, const std::vector<AnchorWindow>& sites,
    std::vector<std::vector<PatternMatch>>* out,
    std::vector<char>* handled) {
  if (degraded_) return false;
  TELEM_SPAN_ARG("shard/match_remote", set_index);
  std::map<int, std::vector<std::size_t>> per_worker;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const int w = route_pattern_site(plan_, sites[i]);
    if (w >= 0) per_worker[w].push_back(i);
  }
  std::vector<std::size_t> targets;
  std::vector<Json> requests;
  std::vector<const std::vector<std::size_t>*> batches;
  for (const auto& [w, idx] : per_worker) {
    Json::Array jsites;
    jsites.reserve(idx.size());
    for (const std::size_t i : idx) jsites.push_back(site_to_json(sites[i]));
    Json::Object req;
    req["op"] = Json("shard_match");
    req["set"] = Json(static_cast<std::int64_t>(set_index));
    req["sites"] = Json(std::move(jsites));
    targets.push_back(static_cast<std::size_t>(w));
    requests.push_back(Json(std::move(req)));
    batches.push_back(&idx);
  }
  const std::vector<Json> responses = call_many(targets, requests);
  if (responses.empty() && !targets.empty()) return false;
  std::vector<std::vector<PatternMatch>> got(sites.size());
  std::vector<char> ok(sites.size(), 0);
  try {
    for (std::size_t b = 0; b < responses.size(); ++b) {
      const Json::Array& per_site = responses[b].find("matches")->as_array();
      const std::vector<std::size_t>& idx = *batches[b];
      if (per_site.size() != idx.size()) {
        throw service::JsonError("matches: wrong arity");
      }
      for (std::size_t j = 0; j < idx.size(); ++j) {
        std::vector<PatternMatch> ms;
        ms.reserve(per_site[j].as_array().size());
        for (const Json& jm : per_site[j].as_array()) {
          ms.push_back(match_from_json(jm));
        }
        got[idx[j]] = std::move(ms);
        ok[idx[j]] = 1;
      }
    }
  } catch (const std::exception&) {
    degraded_ = true;
    return false;
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (ok[i] == 0) continue;
    (*out)[i] = std::move(got[i]);
    (*handled)[i] = 1;
  }
  return true;
}

bool RemoteShardBackend::shard_litho(const std::vector<Rect>& cores,
                                     std::vector<std::vector<Hotspot>>* per_core,
                                     std::vector<char>* skipped,
                                     std::vector<char>* handled) {
  if (degraded_) return false;
  TELEM_SPAN("shard/litho_remote");
  std::map<int, std::vector<std::size_t>> per_worker;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const int w = route_litho_tile(plan_, cores[i], config_.worker.model.sigma);
    if (w >= 0) per_worker[w].push_back(i);
  }
  std::vector<std::size_t> targets;
  std::vector<Json> requests;
  std::vector<const std::vector<std::size_t>*> batches;
  for (const auto& [w, idx] : per_worker) {
    Json::Array jcores;
    jcores.reserve(idx.size());
    for (const std::size_t i : idx) jcores.push_back(rect_to_json(cores[i]));
    Json::Object req;
    req["op"] = Json("shard_litho");
    req["cores"] = Json(std::move(jcores));
    targets.push_back(static_cast<std::size_t>(w));
    requests.push_back(Json(std::move(req)));
    batches.push_back(&idx);
  }
  const std::vector<Json> responses = call_many(targets, requests);
  if (responses.empty() && !targets.empty()) return false;
  std::vector<std::vector<Hotspot>> got(cores.size());
  std::vector<char> skip(cores.size(), 0);
  std::vector<char> ok(cores.size(), 0);
  try {
    for (std::size_t b = 0; b < responses.size(); ++b) {
      const Json::Array& hs = responses[b].find("hotspots")->as_array();
      const Json::Array& sk = responses[b].find("skipped")->as_array();
      const std::vector<std::size_t>& idx = *batches[b];
      if (hs.size() != idx.size() || sk.size() != idx.size()) {
        throw service::JsonError("hotspots: wrong arity");
      }
      for (std::size_t j = 0; j < idx.size(); ++j) {
        std::vector<Hotspot> per;
        per.reserve(hs[j].as_array().size());
        for (const Json& jh : hs[j].as_array()) {
          per.push_back(hotspot_from_json(jh));
        }
        got[idx[j]] = std::move(per);
        skip[idx[j]] = sk[j].as_int() != 0 ? 1 : 0;
        ok[idx[j]] = 1;
      }
    }
  } catch (const std::exception&) {
    degraded_ = true;
    return false;
  }
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (ok[i] == 0) continue;
    (*per_core)[i] = std::move(got[i]);
    (*skipped)[i] = skip[i];
    (*handled)[i] = 1;
  }
  return true;
}

void RemoteShardBackend::shard_apply(const LayoutDelta& delta) {
  TELEM_SPAN("shard/apply_remote");
  Rect added = Rect::empty();
  Rect touched = Rect::empty();
  for (const auto& [k, ld] : delta.layers()) {
    if (!ld.added.empty()) {
      added = added.join(ld.added.bbox());
      touched = touched.join(ld.added.bbox());
    }
    if (!ld.removed.empty()) touched = touched.join(ld.removed.bbox());
  }
  // Same rule as LocalShardBackend::shard_apply: growth past the plan
  // extent leaves geometry no core owns, so stop accelerating.
  if (!added.is_empty() && !plan_.extent.contains(added)) degraded_ = true;
  if (degraded_) return;
  const Json jdelta = delta_to_json(delta);
  std::vector<std::size_t> targets;
  std::vector<Json> requests;
  for (std::size_t s = 0; s < plan_.size(); ++s) {
    if (!touched.is_empty() && !plan_.windows[s].overlaps(touched)) continue;
    Json::Object req;
    req["op"] = Json("shard_edit");
    req["delta"] = jdelta;
    targets.push_back(s);
    requests.push_back(Json(std::move(req)));
  }
  if (targets.empty()) return;
  if (call_many(targets, requests).empty()) degraded_ = true;
}

}  // namespace dfm::shard
