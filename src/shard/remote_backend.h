// Multi-process ShardBackend: N `dfmkit shard-serve` worker processes,
// one per spatial shard, driven over the protocol-v4 framed channel.
// Routing and stitching are byte-for-byte the same logic as
// LocalShardBackend (the route_* helpers are shared); this layer adds
// process lifecycle (fork+exec, readiness wait, shutdown+reap) and
// exact Json serialization, nothing semantic — so local invariance
// tests carry over to the distributed deployment.
#pragma once

#include "core/shard_backend.h"
#include "service/client.h"
#include "shard/plan.h"
#include "shard/worker.h"

#include <sys/types.h>

#include <string>
#include <vector>

namespace dfm::shard {

struct RemoteShardConfig {
  /// Engine configuration every worker reproduces (tech, optical model,
  /// litho tiling/calibration inputs, worker pool size).
  ShardWorkerConfig worker;
  /// Layout file workers hydrate their windows from (GDSII or OASIS,
  /// top cell served by the streaming reader). Required.
  std::string layout_path;
  /// The dfmkit binary to exec as workers (/proc/self/exe for the CLI;
  /// tests pass the DFMKIT_BIN compile definition).
  std::string binary;
  /// Directory for worker sockets and log files. Required; must exist.
  std::string socket_dir;
  int shards = 2;
  /// When non-empty, each worker records telemetry and writes
  /// <trace_dir>/shard-<i>.trace.json on exit (merge with trace-merge).
  std::string trace_dir;
  /// Seconds to wait for each worker's socket to accept.
  double spawn_timeout_s = 30.0;
};

/// One spawned worker process.
struct ShardProcess {
  pid_t pid = -1;
  std::string socket_path;
};

class RemoteShardBackend : public ShardBackend {
 public:
  /// Partitions `extent` (the join of the coordinator snapshot's layer
  /// bboxes) into config.shards cores, spawns one worker per core,
  /// waits for readiness, and shard_open's each one. Throws on spawn,
  /// connect, handshake, or open failure — workers already started are
  /// reaped before the throw.
  RemoteShardBackend(const Rect& extent, RemoteShardConfig config);
  ~RemoteShardBackend() override;

  const ShardPlan& plan() const { return plan_; }
  /// True once an edit escaped the plan extent or a worker failed
  /// mid-batch; every dispatch then declines and the flow computes
  /// locally (byte-identical — the shards just stop accelerating).
  bool degraded() const { return degraded_; }

  std::size_t shard_count() const override { return clients_.size(); }
  bool is_degraded() const override { return degraded_; }

  bool shard_drc(const std::vector<Rule>& rules, std::vector<Region>* bad2x,
                 std::vector<char>* handled) override;
  bool shard_match(std::size_t set_index,
                   const std::vector<AnchorWindow>& sites,
                   std::vector<std::vector<PatternMatch>>* out,
                   std::vector<char>* handled) override;
  bool shard_litho(const std::vector<Rect>& cores,
                   std::vector<std::vector<Hotspot>>* per_core,
                   std::vector<char>* skipped,
                   std::vector<char>* handled) override;
  void shard_apply(const LayoutDelta& delta) override;

 private:
  /// call_ok on worker `w` with trace context attached by the client.
  service::Json call(std::size_t w, service::Json req);
  /// Runs `req_for(w)` against every worker in `targets` concurrently
  /// (one thread per worker; each ServiceClient is single-owner).
  /// Returns one response per target, or empty on any failure (which
  /// also degrades the backend).
  std::vector<service::Json> call_many(
      const std::vector<std::size_t>& targets,
      const std::vector<service::Json>& requests);
  void shutdown_workers() noexcept;

  RemoteShardConfig config_;
  ShardPlan plan_;
  std::vector<ShardProcess> procs_;
  std::vector<service::ServiceClient> clients_;
  bool degraded_ = false;
};

/// Forks and execs `binary shard-serve --socket <socket_path> ...`,
/// redirecting the worker's stdout/stderr to `log_path` (append).
/// Returns the child pid; throws on fork failure.
pid_t spawn_shard_worker(const std::string& binary,
                         const std::string& socket_path,
                         const std::string& log_path, unsigned threads,
                         const std::string& trace_out);

/// Blocks until a Unix socket at `path` accepts a connection, polling
/// with backoff up to `timeout_s`. Returns a connected ServiceClient
/// (hello already consumed); throws on timeout or if `pid` exits first.
service::ServiceClient connect_shard_worker(const std::string& path,
                                            pid_t pid, double timeout_s);

/// This process's executable (/proc/self/exe) — the default worker
/// binary for `dfmkit flow --shards` and `dfmkit serve --shards`.
std::string self_executable_path();

/// Creates a fresh scratch directory for worker sockets and logs under
/// `base` (empty: $TMPDIR or /tmp). Left behind on exit so worker logs
/// survive for post-mortems.
std::string make_shard_scratch_dir(const std::string& base = "");

/// The partition extent for a layout file: the join of every standard
/// flow layer's bbox from the stream index (no geometry decoded). The
/// same file is what workers hydrate their windows from, so coordinator
/// plan and worker content agree by construction.
Rect shard_extent_of(const std::string& layout_path);

}  // namespace dfm::shard
