#include "shard/shard_server.h"

#include "core/stream_source.h"
#include "core/telemetry.h"
#include "core/version.h"
#include "service/protocol.h"
#include "shard/wire.h"
#include "shard/worker.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dfm::shard {
namespace {

using service::Json;
using service::JsonError;
using service::kProtocolVersion;
using service::make_error;
using service::make_ok;
using service::ProtocolError;
using service::read_frame;
using service::write_frame;
namespace errc = service::errc;

LithoFastMode fast_from_string(const std::string& s) {
  if (s == "auto") return LithoFastMode::kAuto;
  if (s == "fft") return LithoFastMode::kFft;
  if (s == "direct") return LithoFastMode::kDirect;
  if (s == "off") return LithoFastMode::kOff;
  throw JsonError("litho_fast: expected auto|fft|direct|off, got \"" + s +
                  "\"");
}

Json hello_payload() {
  Json::Object out;
  out["op"] = Json("hello");
  out["ok"] = Json(true);
  out["server"] = Json("dfmkit-shard");
  out["protocol"] = Json(kProtocolVersion);
  out["revision"] = Json(std::string(git_revision()));
  out["build"] = Json(std::string(build_config()));
  return Json(std::move(out));
}

const Json& require(const Json& req, const char* key) {
  const Json* f = req.find(key);
  if (f == nullptr) throw JsonError(std::string(key) + ": required field");
  return *f;
}

Json do_open(const Json& req, unsigned default_threads,
             std::optional<ShardWorkerSession>& session, std::uint64_t id) {
  ShardWorkerConfig config;
  config.tech = tech_from_json(require(req, "tech"));
  config.model = model_from_json(require(req, "model"));
  config.litho_tile =
      static_cast<Coord>(req.get_int("litho_tile", config.litho_tile));
  config.litho_edge_tolerance = static_cast<Coord>(
      req.get_int("litho_edge_tolerance", config.litho_edge_tolerance));
  config.litho_fast = fast_from_string(req.get_string("litho_fast", "auto"));
  config.threads = static_cast<unsigned>(
      req.get_int("threads", static_cast<std::int64_t>(default_threads)));
  const Rect core = rect_from_json(require(req, "core"));
  const Rect window = rect_from_json(require(req, "window"));

  const std::string path = req.get_string("path", "");
  session.reset();
  if (!path.empty()) {
    // Hydrate from the layout file: the streaming readers decode only
    // the window's geometry, so N workers opening one file never hold
    // the full layout resident anywhere.
    session.emplace(config, core, window, *open_stream_source(path));
  } else {
    // Inline geometry (tests, tiny layouts): layers ride in the frame.
    LayerMap layers;
    if (const Json* jl = req.find("layers"); jl != nullptr) {
      for (const Json& e : jl->as_array()) {
        layers.emplace(layer_from_json(require(e, "layer")),
                       region_from_json(require(e, "region")));
      }
    }
    session.emplace(config, core, window, std::move(layers));
  }

  Json::Object fields;
  fields["core"] = rect_to_json(core);
  fields["window"] = rect_to_json(window);
  return make_ok(id, std::move(fields));
}

Json do_drc(const Json& req, ShardWorkerSession& session, std::uint64_t id) {
  Json::Array bad;
  for (const Json& jr : require(req, "rules").as_array()) {
    bad.push_back(region_to_json(session.drc_width_bad2x(rule_from_json(jr))));
  }
  Json::Object fields;
  fields["bad2x"] = Json(std::move(bad));
  return make_ok(id, std::move(fields));
}

Json do_match(const Json& req, ShardWorkerSession& session, std::uint64_t id) {
  const std::size_t set_index =
      static_cast<std::size_t>(require(req, "set").as_int());
  std::vector<AnchorWindow> sites;
  for (const Json& js : require(req, "sites").as_array()) {
    sites.push_back(site_from_json(js));
  }
  const std::vector<std::vector<PatternMatch>> got =
      session.match(set_index, sites);
  Json::Array out;
  out.reserve(got.size());
  for (const std::vector<PatternMatch>& per_site : got) {
    Json::Array ms;
    ms.reserve(per_site.size());
    for (const PatternMatch& m : per_site) ms.push_back(match_to_json(m));
    out.push_back(Json(std::move(ms)));
  }
  Json::Object fields;
  fields["matches"] = Json(std::move(out));
  return make_ok(id, std::move(fields));
}

Json do_litho(const Json& req, ShardWorkerSession& session, std::uint64_t id) {
  Json::Array hotspots;
  Json::Array skipped;
  for (const Json& jc : require(req, "cores").as_array()) {
    bool skip = false;
    const std::vector<Hotspot> hs =
        session.litho_tile(rect_from_json(jc), skip);
    Json::Array per;
    per.reserve(hs.size());
    for (const Hotspot& h : hs) per.push_back(hotspot_to_json(h));
    hotspots.push_back(Json(std::move(per)));
    skipped.push_back(Json(skip ? 1 : 0));
  }
  Json::Object fields;
  fields["hotspots"] = Json(std::move(hotspots));
  fields["skipped"] = Json(std::move(skipped));
  return make_ok(id, std::move(fields));
}

Json do_edit(const Json& req, ShardWorkerSession& session, std::uint64_t id) {
  session.apply(delta_from_json(require(req, "delta")));
  return make_ok(id);
}

/// One request -> one response. `shutdown` flags an orderly exit after
/// the reply is written.
Json dispatch(const Json& req, const ShardServeOptions& options,
              std::optional<ShardWorkerSession>& session, bool& shutdown) {
  const std::uint64_t id =
      static_cast<std::uint64_t>(req.get_int("id", 0));
  const std::string op = req.get_string("op", "");
  TELEM_COUNTER_ADD("shard.requests", 1);

  if (op == "ping") return make_ok(id);
  if (op == "shutdown") {
    shutdown = true;
    return make_ok(id);
  }
  if (op == "shard_open") return do_open(req, options.threads, session, id);

  if (op == "shard_drc" || op == "shard_match" || op == "shard_litho" ||
      op == "shard_edit") {
    if (!session.has_value()) {
      return make_error(id, errc::kUnknownSession,
                        "no shard opened on this worker");
    }
    if (op == "shard_drc") return do_drc(req, *session, id);
    if (op == "shard_match") return do_match(req, *session, id);
    if (op == "shard_litho") return do_litho(req, *session, id);
    return do_edit(req, *session, id);
  }
  return make_error(id, errc::kUnknownOp, "unknown op \"" + op + "\"");
}

/// Serves one coordinator connection to completion. Returns true when a
/// shutdown op asked the whole worker to exit.
bool serve_connection(int fd, const ShardServeOptions& options,
                      std::optional<ShardWorkerSession>& session) {
  try {
    write_frame(fd, hello_payload().dump());
  } catch (const ProtocolError&) {
    return false;  // peer vanished before the handshake
  }
  std::string payload;
  bool shutdown = false;
  while (!shutdown) {
    try {
      if (!read_frame(fd, payload, kShardMaxFrameBytes)) break;
    } catch (const ProtocolError& pe) {
      // The length prefix can no longer be trusted; reply and drop.
      try {
        write_frame(fd, make_error(0, pe.code(), pe.what()).dump());
      } catch (const ProtocolError&) {
      }
      break;
    }

    Json req;
    try {
      req = Json::parse(payload);
      if (!req.is_object()) throw JsonError("request is not a JSON object");
    } catch (const JsonError& e) {
      try {
        write_frame(fd, make_error(0, errc::kBadJson, e.what()).dump());
      } catch (const ProtocolError&) {
        break;
      }
      continue;
    }

    const std::uint64_t id =
        static_cast<std::uint64_t>(req.get_int("id", 0));
    const std::string trace_id = req.get_string("trace_id", "");
    const std::uint64_t parent_span =
        static_cast<std::uint64_t>(req.get_int("parent_span", 0));
    const std::uint64_t span_id = telemetry::next_span_id();
    const std::uint64_t start_ns = telemetry::now_ns();
    Json response;
    {
      // Parent the worker's span under the coordinator's dispatch span,
      // so a merged trace shows coordinator fan-out over worker lanes.
      telemetry::Span span("shard/request", id, span_id, parent_span);
      try {
        response = dispatch(req, options, session, shutdown);
      } catch (const JsonError& je) {
        response = make_error(id, errc::kBadRequest, je.what());
      } catch (const std::exception& e) {
        response = make_error(id, errc::kInternal, e.what());
      }
    }
    if (!trace_id.empty()) {
      Json::Object trace;
      trace["span_id"] = Json(span_id);
      trace["start_ns"] = Json(start_ns);
      trace["end_ns"] = Json(telemetry::now_ns());
      response.set("trace", Json(std::move(trace)));
    }
    try {
      write_frame(fd, response.dump());
    } catch (const ProtocolError&) {
      break;
    }
  }
  return shutdown;
}

}  // namespace

int run_shard_server(const ShardServeOptions& options) {
  if (options.unix_path.empty()) {
    throw std::runtime_error("shard-serve: no socket path configured");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.unix_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("shard-serve: socket path too long: " +
                             options.unix_path);
  }
  std::memcpy(addr.sun_path, options.unix_path.c_str(),
              options.unix_path.size() + 1);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    throw std::runtime_error(std::string("shard-serve: socket: ") +
                             std::strerror(errno));
  }
  ::unlink(options.unix_path.c_str());  // stale socket from a past run
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 4) != 0) {
    const int err = errno;
    ::close(listen_fd);
    throw std::runtime_error("shard-serve: bind " + options.unix_path + ": " +
                             std::strerror(err));
  }
  if (!options.trace_out.empty()) telemetry::set_enabled(true);
  // Readiness marker for the spawn helper and scripts (same contract as
  // `dfmkit serve`): the socket is accepting once this line is out.
  std::printf("dfmkit shard-serve: listening on unix:%s\n",
              options.unix_path.c_str());
  std::fflush(stdout);

  telemetry::set_thread_name("shard worker");
  std::optional<ShardWorkerSession> session;
  bool shutdown = false;
  while (!shutdown) {
    const int cfd = ::accept(listen_fd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    shutdown = serve_connection(cfd, options, session);
    ::close(cfd);
    if (options.once) break;
  }
  ::close(listen_fd);
  ::unlink(options.unix_path.c_str());
  if (!options.trace_out.empty()) {
    telemetry::set_enabled(false);
    const telemetry::MetricsSnapshot metrics = telemetry::metrics_snapshot();
    const telemetry::TraceSnapshot trace = telemetry::drain();
    std::ofstream out(options.trace_out);
    if (out) out << telemetry::chrome_trace_json(trace, metrics);
  }
  std::printf("dfmkit shard-serve: exiting\n");
  std::fflush(stdout);
  return 0;
}

}  // namespace dfm::shard
