// The `dfmkit shard-serve` worker: one process, one spatial shard. A
// minimal framed server speaking the protocol-v4 shard op family over a
// Unix-domain socket — deliberately simpler than the analysis daemon
// (service/server.h): one coordinator connection at a time, requests
// handled inline in arrival order (the coordinator pipelines across
// workers, not within one), no admission queue, no session registry.
//
// Ops: shard_open (hydrate a window from a layout file), shard_drc /
// shard_match / shard_litho (unit batches), shard_edit (mirror a
// delta), ping, shutdown. Requests reuse the v3 trace-context fields,
// so worker spans parent under the coordinator's dispatch span and
// `dfmkit trace-merge` stitches both timelines together.
#pragma once

#include <string>

namespace dfm::shard {

struct ShardServeOptions {
  /// Unix-domain socket path to listen on (required).
  std::string unix_path;
  /// Worker compute pool for shard_open'd sessions; 1 = serial,
  /// 0 = hardware concurrency. A shard_open may override per open.
  unsigned threads = 1;
  /// Exit after the first coordinator connection closes (the spawn
  /// helper's mode); false keeps accepting coordinators until a
  /// shutdown op.
  bool once = true;
  /// When non-empty, record telemetry for the worker's lifetime and
  /// write a Chrome trace here on exit. Worker spans carry the
  /// coordinator's trace context, so `dfmkit trace-merge` can stitch
  /// the coordinator's file with each worker's into one timeline.
  std::string trace_out;
};

/// Runs the worker loop until shutdown (op or disconnect under `once`).
/// Returns a process exit code. Throws on listener setup failure.
int run_shard_server(const ShardServeOptions& options);

}  // namespace dfm::shard
