#include "shard/wire.h"

namespace dfm::shard {

namespace {

Coord field_coord(const Json& j, const char* key) {
  return static_cast<Coord>(j.get_int(key, 0));
}

}  // namespace

Json rect_to_json(const Rect& r) {
  return Json(Json::Array{Json(r.lo.x), Json(r.lo.y), Json(r.hi.x),
                          Json(r.hi.y)});
}

Rect rect_from_json(const Json& j) {
  const Json::Array& a = j.as_array();
  if (a.size() != 4) throw service::JsonError("rect wants 4 coordinates");
  return Rect{a[0].as_int(), a[1].as_int(), a[2].as_int(), a[3].as_int()};
}

Json region_to_json(const Region& r) {
  Json::Array flat;
  flat.reserve(r.rects().size() * 4);
  for (const Rect& b : r.rects()) {
    flat.emplace_back(b.lo.x);
    flat.emplace_back(b.lo.y);
    flat.emplace_back(b.hi.x);
    flat.emplace_back(b.hi.y);
  }
  return Json(std::move(flat));
}

Region region_from_json(const Json& j) {
  const Json::Array& a = j.as_array();
  if (a.size() % 4 != 0) throw service::JsonError("region wants 4n coords");
  Region out;
  for (std::size_t i = 0; i < a.size(); i += 4) {
    out.add(Rect{a[i].as_int(), a[i + 1].as_int(), a[i + 2].as_int(),
                 a[i + 3].as_int()});
  }
  return out;
}

Json tech_to_json(const Tech& t) {
  Json::Object o;
  o["m1_width"] = Json(t.m1_width);
  o["m1_space"] = Json(t.m1_space);
  o["m1_pitch"] = Json(t.m1_pitch);
  o["m1_min_area"] = Json(t.m1_min_area);
  o["m2_width"] = Json(t.m2_width);
  o["m2_space"] = Json(t.m2_space);
  o["m2_pitch"] = Json(t.m2_pitch);
  o["via_size"] = Json(t.via_size);
  o["via_space"] = Json(t.via_space);
  o["via_enclosure"] = Json(t.via_enclosure);
  o["via_enclosure_end"] = Json(t.via_enclosure_end);
  o["poly_width"] = Json(t.poly_width);
  o["poly_pitch"] = Json(t.poly_pitch);
  o["diff_space"] = Json(t.diff_space);
  o["cell_height"] = Json(t.cell_height);
  o["rail_width"] = Json(t.rail_width);
  o["wide_width"] = Json(t.wide_width);
  o["wide_space"] = Json(t.wide_space);
  o["dpt_space"] = Json(t.dpt_space);
  o["stitch_overlap"] = Json(t.stitch_overlap);
  o["density_tile"] = Json(t.density_tile);
  o["density_min"] = Json(t.density_min);
  o["density_max"] = Json(t.density_max);
  return Json(std::move(o));
}

Tech tech_from_json(const Json& j) {
  Tech t;
  t.m1_width = field_coord(j, "m1_width");
  t.m1_space = field_coord(j, "m1_space");
  t.m1_pitch = field_coord(j, "m1_pitch");
  t.m1_min_area = field_coord(j, "m1_min_area");
  t.m2_width = field_coord(j, "m2_width");
  t.m2_space = field_coord(j, "m2_space");
  t.m2_pitch = field_coord(j, "m2_pitch");
  t.via_size = field_coord(j, "via_size");
  t.via_space = field_coord(j, "via_space");
  t.via_enclosure = field_coord(j, "via_enclosure");
  t.via_enclosure_end = field_coord(j, "via_enclosure_end");
  t.poly_width = field_coord(j, "poly_width");
  t.poly_pitch = field_coord(j, "poly_pitch");
  t.diff_space = field_coord(j, "diff_space");
  t.cell_height = field_coord(j, "cell_height");
  t.rail_width = field_coord(j, "rail_width");
  t.wide_width = field_coord(j, "wide_width");
  t.wide_space = field_coord(j, "wide_space");
  t.dpt_space = field_coord(j, "dpt_space");
  t.stitch_overlap = field_coord(j, "stitch_overlap");
  t.density_tile = field_coord(j, "density_tile");
  if (const Json* v = j.find("density_min")) t.density_min = v->as_double();
  if (const Json* v = j.find("density_max")) t.density_max = v->as_double();
  return t;
}

Json model_to_json(const OpticalModel& m) {
  Json::Object o;
  o["sigma"] = Json(m.sigma);
  o["threshold"] = Json(m.threshold);
  o["px"] = Json(m.px);
  return Json(std::move(o));
}

OpticalModel model_from_json(const Json& j) {
  OpticalModel m;
  m.sigma = field_coord(j, "sigma");
  if (const Json* v = j.find("threshold")) m.threshold = v->as_double();
  m.px = field_coord(j, "px");
  return m;
}

Json rule_to_json(const Rule& r) {
  Json::Object o;
  o["name"] = Json(r.name);
  o["layer"] = layer_to_json(r.layer);
  o["value"] = Json(r.value);
  return Json(std::move(o));
}

Rule rule_from_json(const Json& j) {
  Rule r;
  r.kind = RuleKind::kMinWidth;  // the only distributed kind
  r.name = j.get_string("name", "");
  if (const Json* v = j.find("layer")) r.layer = layer_from_json(*v);
  r.value = field_coord(j, "value");
  return r;
}

Json site_to_json(const AnchorWindow& s) {
  return Json(Json::Array{Json(s.anchor.x), Json(s.anchor.y),
                          Json(s.window.lo.x), Json(s.window.lo.y),
                          Json(s.window.hi.x), Json(s.window.hi.y)});
}

AnchorWindow site_from_json(const Json& j) {
  const Json::Array& a = j.as_array();
  if (a.size() != 6) throw service::JsonError("site wants 6 coordinates");
  AnchorWindow s;
  s.anchor = Point{a[0].as_int(), a[1].as_int()};
  s.window = Rect{a[2].as_int(), a[3].as_int(), a[4].as_int(), a[5].as_int()};
  return s;
}

Json match_to_json(const PatternMatch& m) {
  Json::Object o;
  o["rule"] = Json(static_cast<std::int64_t>(m.rule_index));
  o["window"] = rect_to_json(m.window);
  o["anchor"] = Json(Json::Array{Json(m.anchor.x), Json(m.anchor.y)});
  o["exact"] = Json(m.exact);
  return Json(std::move(o));
}

PatternMatch match_from_json(const Json& j) {
  PatternMatch m;
  m.rule_index = static_cast<std::size_t>(j.get_int("rule", 0));
  if (const Json* v = j.find("window")) m.window = rect_from_json(*v);
  if (const Json* v = j.find("anchor")) {
    const Json::Array& a = v->as_array();
    if (a.size() != 2) throw service::JsonError("anchor wants 2 coordinates");
    m.anchor = Point{a[0].as_int(), a[1].as_int()};
  }
  m.exact = j.get_bool("exact", true);
  return m;
}

Json hotspot_to_json(const Hotspot& h) {
  Json::Object o;
  o["kind"] = Json(h.kind == HotspotKind::kPinch ? 0 : 1);
  o["marker"] = rect_to_json(h.marker);
  o["severity"] = Json(h.severity);
  return Json(std::move(o));
}

Hotspot hotspot_from_json(const Json& j) {
  Hotspot h;
  h.kind = j.get_int("kind", 0) == 0 ? HotspotKind::kPinch
                                     : HotspotKind::kBridge;
  if (const Json* v = j.find("marker")) h.marker = rect_from_json(*v);
  if (const Json* v = j.find("severity")) h.severity = v->as_double();
  return h;
}

Json layer_to_json(LayerKey k) {
  return Json(Json::Array{Json(static_cast<std::int64_t>(k.layer)),
                          Json(static_cast<std::int64_t>(k.datatype))});
}

LayerKey layer_from_json(const Json& j) {
  const Json::Array& a = j.as_array();
  if (a.size() != 2) throw service::JsonError("layer wants 2 ints");
  LayerKey k;
  k.layer = static_cast<std::int16_t>(a[0].as_int());
  k.datatype = static_cast<std::int16_t>(a[1].as_int());
  return k;
}

Json delta_to_json(const LayoutDelta& d) {
  Json::Array out;
  for (const auto& [k, ld] : d.layers()) {
    Json::Object o;
    o["layer"] = layer_to_json(k);
    o["add"] = region_to_json(ld.added);
    o["remove"] = region_to_json(ld.removed);
    out.push_back(Json(std::move(o)));
  }
  return Json(std::move(out));
}

LayoutDelta delta_from_json(const Json& j) {
  LayoutDelta d;
  for (const Json& e : j.as_array()) {
    LayerKey k;
    if (const Json* v = e.find("layer")) k = layer_from_json(*v);
    if (const Json* v = e.find("add")) d.add(k, region_from_json(*v));
    if (const Json* v = e.find("remove")) d.remove(k, region_from_json(*v));
  }
  return d;
}

}  // namespace dfm::shard
