// Json (de)serialization for the protocol-v4 shard op family. All
// geometry travels as flat integer coordinate arrays (exact by the Json
// integer round-trip guarantee); hotspot severities are doubles and
// round-trip exactly through the serializer's %.17g. The encoding is
// deliberately positional and dense — shard frames carry bulk geometry,
// not hand-edited config.
#pragma once

#include "core/delta.h"
#include "drc/rules.h"
#include "geometry/region.h"
#include "layout/tech.h"
#include "litho/litho.h"
#include "pattern/capture.h"
#include "pattern/matcher.h"
#include "service/protocol.h"

#include <string>
#include <vector>

namespace dfm::shard {

using service::Json;

/// Shard channels carry whole-window bad regions and per-tile hotspot
/// lists; give them headroom over the interactive service cap.
inline constexpr std::size_t kShardMaxFrameBytes = 64u << 20;

// Rect <-> [x0, y0, x1, y1]
Json rect_to_json(const Rect& r);
Rect rect_from_json(const Json& j);

// Region <-> flat [x0, y0, x1, y1, ...] over its rects.
Json region_to_json(const Region& r);
Region region_from_json(const Json& j);

Json tech_to_json(const Tech& t);
Tech tech_from_json(const Json& j);

Json model_to_json(const OpticalModel& m);
OpticalModel model_from_json(const Json& j);

// Rule subset a width batch needs: {name, layer, value}.
Json rule_to_json(const Rule& r);
Rule rule_from_json(const Json& j);

// AnchorWindow <-> [ax, ay, x0, y0, x1, y1]
Json site_to_json(const AnchorWindow& s);
AnchorWindow site_from_json(const Json& j);

// PatternMatch <-> {rule, window, anchor, exact}
Json match_to_json(const PatternMatch& m);
PatternMatch match_from_json(const Json& j);

// Hotspot <-> {kind, marker, severity}
Json hotspot_to_json(const Hotspot& h);
Hotspot hotspot_from_json(const Json& j);

// LayerKey <-> [layer, datatype]
Json layer_to_json(LayerKey k);
LayerKey layer_from_json(const Json& j);

// LayoutDelta <-> [{layer, add, remove}, ...]
Json delta_to_json(const LayoutDelta& d);
LayoutDelta delta_from_json(const Json& j);

}  // namespace dfm::shard
