#include "shard/worker.h"

#include "core/delta.h"
#include "core/parallel.h"
#include "core/snapshot_source.h"
#include "core/telemetry.h"
#include "drc/engine.h"
#include "litho/fft.h"
#include "litho/prefilter.h"

#include <utility>

namespace dfm::shard {

ShardWorkerSession::ShardWorkerSession(ShardWorkerConfig config, Rect core,
                                       Rect window, LayerMap window_layers)
    : config_(config),
      core_(core),
      window_(window),
      layers_(std::move(window_layers)) {
  if (config_.threads != 1) pool_ = std::make_unique<ThreadPool>(config_.threads);
}

ShardWorkerSession::ShardWorkerSession(ShardWorkerConfig config, Rect core,
                                       Rect window,
                                       const SnapshotSource& source)
    : ShardWorkerSession(config, core, window, LayerMap{}) {
  for (const LayerKey k : LayoutSnapshot::standard_flow_layers()) {
    layers_.emplace(k, source.read_layer_window(k, window_));
  }
}

ShardWorkerSession::~ShardWorkerSession() = default;
ShardWorkerSession::ShardWorkerSession(ShardWorkerSession&&) noexcept = default;
ShardWorkerSession& ShardWorkerSession::operator=(ShardWorkerSession&&) noexcept =
    default;

const LayoutSnapshot& ShardWorkerSession::snapshot() {
  if (!snap_) {
    // Copy: layers_ stays the mutable authority across edits while the
    // snapshot normalizes its own view.
    snap_ = std::make_unique<LayoutSnapshot>(LayerMap(layers_));
  }
  return *snap_;
}

const DrcPlusEngine& ShardWorkerSession::engine() {
  if (!engine_) {
    engine_ = std::make_unique<DrcPlusEngine>(DrcPlusDeck::standard(config_.tech));
  }
  return *engine_;
}

Region ShardWorkerSession::drc_width_bad2x(const Rule& rule) {
  TELEM_SPAN("shard_worker/drc");
  const LayoutSnapshot& snap = snapshot();
  if (!snap.has(rule.layer)) return {};
  const Region bad = min_width_bad2x(snap.layer(rule.layer).region(),
                                     rule.value);
  const Rect core2x{core_.lo.x * 2, core_.lo.y * 2, core_.hi.x * 2,
                    core_.hi.y * 2};
  return bad.clipped(core2x);
}

std::vector<std::vector<PatternMatch>> ShardWorkerSession::match(
    std::size_t set_index, const std::vector<AnchorWindow>& sites) {
  TELEM_SPAN_ARG("shard_worker/match", set_index);
  const LayoutSnapshot& snap = snapshot();
  const DrcPlusEngine& eng = engine();
  const PatternRuleSet& set = eng.deck().pattern_sets.at(set_index);
  const std::vector<CapturedPattern> captured =
      parallel_map(pool_.get(), sites.size(), [&](std::size_t i) {
        return capture_window_at(snap, set.capture_layers, sites[i]);
      });
  return eng.matcher(set_index).scan_per_window(captured, pool_.get());
}

std::vector<Hotspot> ShardWorkerSession::litho_tile(const Rect& tile_core,
                                                    bool& skipped) {
  TELEM_SPAN("shard_worker/litho");
  const LayoutSnapshot& snap = snapshot();
  HotspotSimOptions sim{pool_.get()};
  sim.model = config_.model;
  sim.edge_tolerance = config_.litho_edge_tolerance;
  sim.tile = config_.litho_tile;
  sim.fast = config_.litho_fast;
  if (kernels_ == nullptr) kernels_ = std::make_shared<KernelSpectrumCache>();
  sim.kernels = kernels_;
  if (cal_ == nullptr) {
    cal_ = std::make_unique<PrefilterCalibration>(
        resolve_litho_calibration(sim));
  }
  bool skip = false;
  std::vector<Hotspot> out = simulate_litho_tile(
      snap.layer(layers::kMetal1), tile_core, sim, pool_.get(),
      cal_->valid ? cal_.get() : nullptr, skip);
  skipped = skip;
  return out;
}

void ShardWorkerSession::apply(const LayoutDelta& delta) {
  TELEM_SPAN("shard_worker/apply");
  LayoutDelta clipped;
  for (const auto& [k, ld] : delta.layers()) {
    // Clipping distributes over the edit algebra: ((L - R) | A) & W ==
    // ((L & W) - R) | (A & W), so the windowed layer stays exactly the
    // edited design clipped to the window.
    if (!ld.added.empty()) clipped.add(k, ld.added.clipped(window_));
    if (!ld.removed.empty()) clipped.remove(k, ld.removed);
  }
  clipped.apply(layers_);
  snap_.reset();
}

}  // namespace dfm::shard
