// The shard compute node: one spatial shard's resident state and the
// three unit computations the coordinator outsources to it. A worker
// session holds each flow layer clipped to its hydration window and
// answers min-width morphology, pattern capture+match, and litho tile
// simulation for units whose influence region lies inside that window —
// producing exactly the bytes the coordinator's in-process engines
// would (see core/shard_backend.h for the contract).
//
// The same class backs both deployment shapes: LocalShardBackend holds
// N of these in-process (deterministic, TSan-friendly tests), and the
// `dfmkit shard-serve` worker wraps one behind the protocol-v4 framed
// ops (src/shard/shard_server.h).
//
// Workers are pure compute: no FlowCaches, no staleness tracking. The
// coordinator owns all caching and decides which units are stale; a
// worker just mirrors geometry (apply) and evaluates units on demand.
#pragma once

#include "core/drc_plus.h"
#include "core/hotspot_flow.h"
#include "core/snapshot.h"
#include "drc/rules.h"
#include "layout/tech.h"
#include "pattern/capture.h"
#include "pattern/matcher.h"

#include <memory>
#include <vector>

namespace dfm {
class LayoutDelta;
class SnapshotSource;
}  // namespace dfm

namespace dfm::shard {

/// Everything a worker needs to reproduce the coordinator's engines,
/// serialized over shard_open for the remote shape. All fields are pure
/// inputs of deterministic constructions (rule deck, matchers, litho
/// calibration), so coordinator and worker agree byte for byte.
struct ShardWorkerConfig {
  Tech tech;
  OpticalModel model;
  Coord litho_tile = 20000;
  Coord litho_edge_tolerance = 12;
  LithoFastMode litho_fast = LithoFastMode::kAuto;
  unsigned threads = 1;  // the worker's own compute pool (1 = serial)
};

class ShardWorkerSession {
 public:
  /// Takes ownership of `window_layers`: each flow layer already
  /// clipped to `window` (half-open).
  ShardWorkerSession(ShardWorkerConfig config, Rect core, Rect window,
                     LayerMap window_layers);

  /// Hydrates the window from a snapshot source
  /// (SnapshotSource::read_layer_window per standard flow layer).
  ShardWorkerSession(ShardWorkerConfig config, Rect core, Rect window,
                     const SnapshotSource& source);

  // Out of line: members hold types incomplete in this header.
  ~ShardWorkerSession();
  ShardWorkerSession(ShardWorkerSession&&) noexcept;
  ShardWorkerSession& operator=(ShardWorkerSession&&) noexcept;

  const Rect& core() const { return core_; }
  const Rect& window() const { return window_; }
  const ShardWorkerConfig& config() const { return config_; }

  /// min_width_bad2x of the windowed layer, clipped to the core on the
  /// 2x grid. Unioned across all shards this is exactly the whole-layer
  /// bad region (the morphology's influence radius fits in the halo).
  Region drc_width_bad2x(const Rule& rule);

  /// Captures and scans `sites` for pattern set `set_index` of the
  /// standard deck. Every site's window must lie inside this worker's
  /// window (the coordinator routes by anchor ownership and checks
  /// containment before dispatch).
  std::vector<std::vector<PatternMatch>> match(
      std::size_t set_index, const std::vector<AnchorWindow>& sites);

  /// One litho simulation tile (simulate_litho_tile over the windowed
  /// m1); `tile_core.expanded(6*sigma)` must lie inside the window.
  std::vector<Hotspot> litho_tile(const Rect& tile_core, bool& skipped);

  /// Applies an edit, clipped to the window: layer <- (layer - removed)
  /// | (added & window). Derived state (snapshot, views) rebuilds
  /// lazily on the next unit.
  void apply(const LayoutDelta& delta);

 private:
  const LayoutSnapshot& snapshot();
  const DrcPlusEngine& engine();

  ShardWorkerConfig config_;
  Rect core_;
  Rect window_;
  LayerMap layers_;
  std::unique_ptr<LayoutSnapshot> snap_;
  std::unique_ptr<DrcPlusEngine> engine_;
  std::unique_ptr<ThreadPool> pool_;  // null when config_.threads == 1
  std::shared_ptr<KernelSpectrumCache> kernels_;
  std::unique_ptr<PrefilterCalibration> cal_;  // resolved on first tile
};

}  // namespace dfm::shard
