#include "timing/timing.h"

#include <algorithm>
#include <cmath>

namespace dfm {

std::vector<GateGeometry> extract_gates(const Region& poly,
                                        const Region& diff) {
  std::vector<GateGeometry> out;
  std::vector<Region> channels = (poly & diff).components();
  for (Region& ch : channels) {
    GateGeometry g;
    g.bbox = ch.bbox();
    // Channel width runs along the poly stripe; for a vertical poly over
    // a horizontal diffusion band the channel is taller than long.
    g.vertical_poly = g.bbox.height() >= g.bbox.width();
    g.drawn_length = g.vertical_poly ? g.bbox.width() : g.bbox.height();
    g.width = g.vertical_poly ? g.bbox.height() : g.bbox.width();
    g.channel = std::move(ch);
    out.push_back(std::move(g));
  }
  return out;
}

EffectiveLength effective_length(const Region& printed_poly,
                                 const GateGeometry& gate, Coord slice_width,
                                 double leak_sensitivity) {
  EffectiveLength eff;
  if (slice_width <= 0) slice_width = 5;
  // The printed channel: printed poly limited to the drawn channel's
  // diffusion footprint (slightly expanded along the length direction to
  // capture over/under-print of the gate edge).
  const Rect bb = gate.bbox;
  const Coord margin = gate.drawn_length;  // allow up to 2x print
  const Rect probe = gate.vertical_poly
                         ? Rect{bb.lo.x - margin, bb.lo.y, bb.hi.x + margin, bb.hi.y}
                         : Rect{bb.lo.x, bb.lo.y - margin, bb.hi.x, bb.hi.y + margin};
  const Region printed = printed_poly.clipped(probe);

  double sum_w_over_l = 0;
  double sum_w_leak = 0;
  double total_w = 0;
  const Coord w_lo = gate.vertical_poly ? bb.lo.y : bb.lo.x;
  const Coord w_hi = gate.vertical_poly ? bb.hi.y : bb.hi.x;
  for (Coord pos = w_lo; pos < w_hi; pos += slice_width) {
    const Coord end = std::min(pos + slice_width, w_hi);
    const Rect strip = gate.vertical_poly
                           ? Rect{probe.lo.x, pos, probe.hi.x, end}
                           : Rect{pos, probe.lo.y, end, probe.hi.y};
    const Region sl = printed.clipped(strip);
    const double w = static_cast<double>(end - pos);
    // Average printed length across the strip.
    const double l = static_cast<double>(sl.area()) / w;
    ++eff.slices;
    total_w += w;
    if (l < 1.0) {
      // The gate is fully pinched in this strip: the uncontrolled channel
      // slice shorts source to drain — the transistor is broken, not
      // merely fast.
      eff.open = true;
      continue;
    }
    sum_w_over_l += w / l;
    sum_w_leak +=
        w * std::exp(-(l - static_cast<double>(gate.drawn_length)) /
                     leak_sensitivity);
  }
  if (sum_w_over_l > 0) eff.l_drive = total_w / sum_w_over_l;
  if (total_w > 0) {
    // Leakage-equivalent length: the uniform length giving the same
    // exp-weighted leakage.
    const double mean_leak = sum_w_leak / total_w;
    eff.l_leak = static_cast<double>(gate.drawn_length) -
                 leak_sensitivity * std::log(std::max(mean_leak, 1e-12));
  }
  return eff;
}

double DelayModel::stage_delay_ps(double l_drive) const {
  const double rel = l_drive / static_cast<double>(l_nominal);
  return tau0_ps * (1.0 + delay_sens * (rel - 1.0));
}

double DelayModel::leakage_rel(double l_leak) const {
  return std::exp(-(l_leak - static_cast<double>(l_nominal)) /
                  leak_sensitivity);
}

namespace {

TimingReport report_from(const std::vector<GateGeometry>& gates,
                         const Region& printed_poly, const DelayModel& model) {
  TimingReport rep;
  for (const GateGeometry& g : gates) {
    GateTiming t;
    t.where = g.bbox;
    t.eff = effective_length(printed_poly, g, 5, model.leak_sensitivity);
    if (t.eff.open || t.eff.l_drive <= 0) {
      ++rep.open_gates;
      t.delay_ps = 10 * model.tau0_ps;  // pessimistic placeholder
      t.leakage_rel = model.leakage_rel(t.eff.l_leak);
    } else {
      t.delay_ps = model.stage_delay_ps(t.eff.l_drive);
      t.leakage_rel = model.leakage_rel(t.eff.l_leak);
    }
    rep.chain_delay_ps += t.delay_ps;
    rep.total_leakage += t.leakage_rel;
    rep.gates.push_back(std::move(t));
  }
  return rep;
}

}  // namespace

TimingReport analyze_timing(const Region& poly, const Region& diff,
                            const Rect& window, const OpticalModel& optics,
                            const ProcessCondition& cond,
                            const DelayModel& model) {
  const auto gates = extract_gates(poly.clipped(window), diff.clipped(window));
  const Region printed = simulate_print(poly, window, optics, cond);
  return report_from(gates, printed, model);
}

TimingReport analyze_timing_drawn(const Region& poly, const Region& diff,
                                  const DelayModel& model) {
  const auto gates = extract_gates(poly, diff);
  return report_from(gates, poly, model);
}

}  // namespace dfm
