// Litho-aware timing: extracts transistor channels (poly over diffusion),
// slices the *printed* gate into strips to handle non-rectangular gates
// (the slice-and-recombine equivalent-transistor method), and maps the
// effective lengths through a compact delay/leakage model. This is the
// "advanced timing analysis based on post-OPC extraction of critical
// dimensions" flow: drawn-CD timing vs printed-CD timing across process
// corners.
#pragma once

#include "geometry/region.h"
#include "litho/litho.h"

#include <string>
#include <vector>

namespace dfm {

/// One transistor channel: the intersection of a poly gate with one
/// diffusion island.
struct GateGeometry {
  Region channel;       // drawn poly ∩ diff
  Rect bbox;
  Coord drawn_length;   // nominal gate length (channel extent across poly)
  Coord width;          // channel extent along poly
  bool vertical_poly;   // true when current flows in x (poly runs in y)
};

/// Finds every gate: connected components of poly ∩ diff. Orientation is
/// inferred from the channel aspect (gates are longer along the poly
/// direction).
std::vector<GateGeometry> extract_gates(const Region& poly, const Region& diff);

/// Equivalent rectangular transistor lengths for a (possibly distorted)
/// printed channel, by slicing across the width direction:
///   drive:   W / Σ (w_i / L_i)      (parallel slice currents)
///   leakage: weighted by exp(-(L_i - L_drawn)/s) (short slices leak
///            exponentially more; s = `leak_sensitivity` nm)
struct EffectiveLength {
  double l_drive = 0;
  double l_leak = 0;
  int slices = 0;
  bool open = false;  // channel printed broken: nonfunctional transistor
};

EffectiveLength effective_length(const Region& printed_poly,
                                 const GateGeometry& gate, Coord slice_width,
                                 double leak_sensitivity);

/// Compact gate-level timing/leakage model: delay grows ~linearly with
/// effective drive length around nominal; leakage falls exponentially
/// with length.
struct DelayModel {
  Coord l_nominal = 40;      // drawn gate length, nm
  double tau0_ps = 10.0;     // stage delay at nominal length
  double delay_sens = 1.2;   // d(delay)/d(L/Lnom), dimensionless
  double leak_sensitivity = 6.0;  // nm per e-fold of leakage

  double stage_delay_ps(double l_drive) const;
  /// Leakage relative to a nominal-length device (1.0 at drawn length).
  double leakage_rel(double l_leak) const;
};

struct GateTiming {
  Rect where;
  EffectiveLength eff;
  double delay_ps = 0;
  double leakage_rel = 0;
};

struct TimingReport {
  std::vector<GateTiming> gates;
  double chain_delay_ps = 0;   // sum over gates (a worst-path proxy)
  double total_leakage = 0;    // sum of relative leakages
  int open_gates = 0;          // catastrophically failed channels
};

/// Full analysis: simulate the poly mask at `cond`, slice every gate,
/// apply the delay model.
TimingReport analyze_timing(const Region& poly, const Region& diff,
                            const Rect& window, const OpticalModel& optics,
                            const ProcessCondition& cond,
                            const DelayModel& model);

/// Drawn-geometry baseline (no litho): what an OPC-unaware flow reports.
TimingReport analyze_timing_drawn(const Region& poly, const Region& diff,
                                  const DelayModel& model);

}  // namespace dfm
