#include "yield/yield.h"

#include "core/telemetry.h"
#include "gen/rng.h"

#include <map>

namespace dfm {

Area short_critical_area(const Region& layer, Coord s) {
  if (s <= 0 || layer.empty()) return 0;
  TELEM_SPAN_ARG("caa/short", static_cast<std::uint64_t>(s));
  // A square defect of side s centered at p touches a net iff p lies in
  // the net bloated by s/2 (Chebyshev). It shorts iff it touches two or
  // more distinct nets, i.e. p is covered by >= 2 bloated nets. Work on
  // the doubled grid so odd sizes stay exact.
  std::vector<Rect> bloated;
  for (const Region& net : layer.scaled(2).components()) {
    const Region grown = net.bloated(s);  // s == 2 * (s/2) on the 2x grid
    for (const Rect& r : grown.rects()) bloated.push_back(r);
  }
  return covered_at_least(bloated, 2).area() / 4;  // back to 1x area
}

Area short_critical_area_nets(const std::vector<Region>& pieces,
                              const std::vector<int>& net_of, Coord s) {
  if (s <= 0 || pieces.empty() || pieces.size() != net_of.size()) return 0;
  // Union the pieces per net, then count double coverage of the per-net
  // bloats exactly as in the component-based variant.
  std::map<int, Region> nets;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    nets[net_of[i]].add(pieces[i]);
  }
  std::vector<Rect> bloated;
  for (auto& [id, net] : nets) {
    const Region grown = net.scaled(2).bloated(s);
    for (const Rect& r : grown.rects()) bloated.push_back(r);
  }
  return covered_at_least(bloated, 2).area() / 4;
}

Area open_critical_area(const Region& layer, Coord s) {
  if (s <= 0 || layer.empty()) return 0;
  TELEM_SPAN_ARG("caa/open", static_cast<std::uint64_t>(s));
  // Band approximation: each canonical rect of cross-section h (its
  // shorter side) can be severed by defects spanning that side; centers
  // form a strip of (s - h) x length. Junction effects are ignored.
  Area total = 0;
  for (const Rect& band : layer.rects()) {
    const Coord w = band.width();
    const Coord h = band.height();
    if (s > h && w >= h) {
      total += static_cast<Area>(s - h) * w;
    } else if (s > w && h > w) {
      total += static_cast<Area>(s - w) * h;
    }
  }
  return total;
}

Area open_critical_area_mc(const Region& layer, Coord s, int samples,
                           std::uint64_t seed) {
  if (s <= 0 || layer.empty() || samples <= 0) return 0;
  const Rect bb = layer.bbox().expanded(s);
  Rng rng(seed);
  int hits = 0;
  for (int i = 0; i < samples; ++i) {
    const Point p{rng.uniform(bb.lo.x, bb.hi.x), rng.uniform(bb.lo.y, bb.hi.y)};
    const Rect defect{p.x - s / 2, p.y - s / 2, p.x + (s + 1) / 2,
                      p.y + (s + 1) / 2};
    // Local connectivity test: removal of the defect square must increase
    // the component count (or erase a component) inside a window.
    const Rect window = defect.expanded(4 * s);
    const Region local = layer.clipped(window);
    if (local.empty()) continue;
    const std::size_t before = local.components().size();
    const Region after = local - Region{defect};
    const std::size_t after_n = after.components().size();
    if (after_n > before || (after_n < before && !after.empty()) ||
        (after.empty() && before > 0)) {
      ++hits;
    }
  }
  return static_cast<Area>(static_cast<double>(hits) / samples *
                           static_cast<double>(bb.area()));
}

}  // namespace dfm
