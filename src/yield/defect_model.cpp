#include "yield/yield.h"

#include <cmath>

namespace dfm {

double DefectModel::pdf(Coord s) const {
  if (s < x0 || s > xmax) return 0.0;
  // Normalization of s^-k on [x0, xmax].
  const double k = exponent;
  const double a = static_cast<double>(x0);
  const double b = static_cast<double>(xmax);
  double norm;
  if (k == 1.0) {
    norm = std::log(b / a);
  } else {
    norm = (std::pow(a, 1 - k) - std::pow(b, 1 - k)) / (k - 1);
  }
  return std::pow(static_cast<double>(s), -k) / norm;
}

double average_critical_area(const std::function<Area(Coord)>& ca,
                             const DefectModel& model, int steps) {
  // Geometric size grid from x0 to xmax; trapezoidal integration of
  // ca(s) * pdf(s).
  const double a = static_cast<double>(model.x0);
  const double b = static_cast<double>(model.xmax);
  if (steps < 2 || b <= a) return 0.0;
  const double ratio = std::pow(b / a, 1.0 / (steps - 1));
  double prev_s = a;
  double prev_v = static_cast<double>(ca(model.x0)) * model.pdf(model.x0);
  double acc = 0.0;
  double s = a;
  for (int i = 1; i < steps; ++i) {
    s *= ratio;
    const auto si = static_cast<Coord>(std::llround(s));
    const double v = static_cast<double>(ca(si)) * model.pdf(si);
    acc += 0.5 * (prev_v + v) * (s - prev_s);
    prev_s = s;
    prev_v = v;
  }
  return acc;
}

double poisson_yield(double lambda) { return std::exp(-lambda); }

double negative_binomial_yield(double lambda, double alpha) {
  return std::pow(1.0 + lambda / alpha, -alpha);
}

double layer_lambda(const Region& layer, const DefectModel& model, bool shorts,
                    int steps) {
  const auto ca = [&layer, shorts](Coord s) {
    return shorts ? short_critical_area(layer, s)
                  : open_critical_area(layer, s);
  };
  const double eca_nm2 = average_critical_area(ca, model, steps);
  // nm^2 -> cm^2: 1 cm = 1e7 nm.
  const double eca_cm2 = eca_nm2 / 1e14;
  return model.d0 * eca_cm2;
}

}  // namespace dfm
