// Redundant via insertion: beside every isolated via, try the four
// adjacent positions; take the first that keeps via spacing and whose
// landing-pad extensions do not create new metal spacing violations.
#include "yield/yield.h"

#include "core/snapshot.h"
#include "geometry/rtree.h"

namespace dfm {
namespace {

const Region& layer_of(const LayerMap& layers, LayerKey k) {
  static const Region kEmpty;
  const auto it = layers.find(k);
  return it == layers.end() ? kEmpty : it->second;
}

}  // namespace

ViaDoublingResult double_vias(const LayerMap& layers, const Tech& tech) {
  ViaDoublingResult res;
  const Region& vias = layer_of(layers, layers::kVia1);
  const Region& m1 = layer_of(layers, layers::kMetal1);
  const Region& m2 = layer_of(layers, layers::kMetal2);

  const std::vector<Region> nets = vias.components();
  std::vector<Rect> via_boxes;
  via_boxes.reserve(nets.size());
  for (const Region& v : nets) via_boxes.push_back(v.bbox());
  RTree tree(via_boxes);

  const Coord sz = tech.via_size;
  const Coord sp = tech.via_space;
  const Coord enc = tech.via_enclosure / 2;  // sign-off (borderless) minimum

  Region accepted;  // newly inserted vias, for self-spacing checks

  for (std::size_t i = 0; i < nets.size(); ++i) {
    // Only single vias (exactly one via-sized component) get doubled.
    const Rect vb = via_boxes[i];
    if (vb.width() > sz || vb.height() > sz) continue;

    // Already redundant? A neighbour via on the same metal island within
    // 2 pitches counts as redundancy; conservatively we double every
    // isolated single and rely on spacing checks to keep it legal.
    ++res.singles_before;

    const Point c = vb.center();
    const Coord step = sz + sp;
    const Point candidates[4] = {{c.x + step, c.y},
                                 {c.x - step, c.y},
                                 {c.x, c.y + step},
                                 {c.x, c.y - step}};
    bool placed = false;
    for (const Point& p : candidates) {
      const Rect nv{p.x - sz / 2, p.y - sz / 2, p.x + sz / 2, p.y + sz / 2};
      // Spacing to existing vias.
      bool ok = true;
      tree.visit(nv.expanded(sp), [&](std::uint32_t j) {
        if (j != i && via_boxes[j].distance(nv) < sp) ok = false;
      });
      if (!ok) continue;
      // Spacing to vias we have already inserted.
      for (const Rect& r : accepted.rects()) {
        if (r.distance(nv) < sp) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      // Landing pads: the redundant via lands on the *same net*, so the
      // pad extension bridges from the original via to the new one (one
      // strip covering both, with enclosure). Extend the metal where it
      // is missing, but only when the extension introduces no new
      // spacing violation against other nets.
      const Rect pad = nv.hull(vb).expanded(enc);
      const Region need1 = Region{pad} - m1;
      const Region need2 = Region{pad} - m2;
      // The extension may not come closer than min spacing to any metal
      // it does not merge with: probe with a bloat-overlap test against
      // everything outside the pad's own merged island.
      auto extension_legal = [&](const Region& need, const Region& metal,
                                 Coord space) {
        if (need.empty()) return true;
        // Neighbouring metal within `space` of the extension that does
        // NOT touch the extension would become a spacing violation.
        const Region near = metal.clipped(pad.expanded(space + 1));
        for (const Region& comp : near.components()) {
          const Coord d = region_distance(comp, need, space + 1);
          if (d > 0 && d < space) return false;
        }
        return true;
      };
      if (!extension_legal(need1, m1, tech.m1_space)) continue;
      if (!extension_legal(need2, m2, tech.m2_space)) continue;

      accepted.add(nv);
      res.new_vias.add(nv);
      res.new_metal1.add(need1);
      res.new_metal2.add(need2);
      ++res.inserted;
      placed = true;
      break;
    }
    if (!placed) ++res.blocked;
  }
  return res;
}

ViaDoublingResult double_vias(const LayoutSnapshot& snap, const Tech& tech) {
  return double_vias(snap.layers(), tech);
}

}  // namespace dfm
