// Redundant via insertion: beside every isolated via, try the four
// adjacent positions; take the first that keeps via spacing and whose
// landing-pad extensions do not create new metal spacing violations.
#include "yield/yield.h"

#include "core/delta.h"
#include "core/snapshot.h"
#include "core/telemetry.h"
#include "geometry/rtree.h"

namespace dfm {
namespace {

const Region& layer_of(const LayerMap& layers, LayerKey k) {
  static const Region kEmpty;
  const auto it = layers.find(k);
  return it == layers.end() ? kEmpty : it->second;
}

// A metal layer's canonical rects plus a spatial index over them. Every
// legality probe below reads only the rects near one candidate pad, so
// gathering them through the tree gives the same geometry as the
// full-layer boolean at local cost.
struct MetalIndex {
  const std::vector<Rect>* rects = nullptr;
  const RTree* tree = nullptr;

  // Metal inside `window`: identical point set (hence identical canonical
  // form) to clipping the whole layer, since rects not touching the
  // window contribute nothing.
  Region clip(const Rect& window) const {
    Region out;
    tree->visit(window, [&](std::uint32_t i) {
      const Rect c = (*rects)[i].intersect(window);
      if (!c.is_empty()) out.add(c);
    });
    return out;
  }

  // `pad` minus the metal: metal outside the pad cannot shrink the
  // difference, so only the overlapping rects matter.
  Region uncovered(const Rect& pad) const {
    Region local;
    tree->visit(pad, [&](std::uint32_t i) { local.add((*rects)[i]); });
    return Region{pad} - local;
  }
};

ViaDoublingResult double_vias_core(const Region& vias, const MetalIndex& m1,
                                   const MetalIndex& m2, const Tech& tech) {
  TELEM_SPAN("vias/double");
  ViaDoublingResult res;

  const std::vector<Region> nets = vias.components();
  std::vector<Rect> via_boxes;
  via_boxes.reserve(nets.size());
  for (const Region& v : nets) via_boxes.push_back(v.bbox());
  RTree tree(via_boxes);

  const Coord sz = tech.via_size;
  const Coord sp = tech.via_space;
  const Coord enc = tech.via_enclosure / 2;  // sign-off (borderless) minimum

  std::vector<Rect> accepted;  // newly inserted vias, for self-spacing

  // Already redundant? A partner cut within two insertion steps whose
  // joint landing pad is covered on both metals is exactly the construct
  // an insertion leaves behind, so detecting it makes doubling
  // idempotent and lets the scorecard credit *realized* redundancy.
  const auto has_partner = [&](std::size_t i, const Rect& vb) {
    bool found = false;
    tree.visit(vb.expanded(2 * (sz + sp)), [&](std::uint32_t j) {
      if (found || j == i) return;
      const Rect ob = via_boxes[j];
      if (ob.width() > sz || ob.height() > sz) return;
      const Rect pad = vb.hull(ob).expanded(enc);
      if (m1.uncovered(pad).empty() && m2.uncovered(pad).empty()) {
        found = true;
      }
    });
    return found;
  };

  for (std::size_t i = 0; i < nets.size(); ++i) {
    // Only single vias (exactly one via-sized component) get doubled.
    const Rect vb = via_boxes[i];
    if (vb.width() > sz || vb.height() > sz) continue;

    ++res.total;
    if (has_partner(i, vb)) {
      ++res.redundant_before;
      continue;
    }
    ++res.singles_before;

    const Point c = vb.center();
    const Coord step = sz + sp;
    const Point candidates[4] = {{c.x + step, c.y},
                                 {c.x - step, c.y},
                                 {c.x, c.y + step},
                                 {c.x, c.y - step}};
    bool placed = false;
    for (const Point& p : candidates) {
      const Rect nv{p.x - sz / 2, p.y - sz / 2, p.x + sz / 2, p.y + sz / 2};
      // Spacing to existing vias.
      bool ok = true;
      tree.visit(nv.expanded(sp), [&](std::uint32_t j) {
        if (j != i && via_boxes[j].distance(nv) < sp) ok = false;
      });
      if (!ok) continue;
      // Spacing to vias we have already inserted.
      for (const Rect& r : accepted) {
        if (r.distance(nv) < sp) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      // Landing pads: the redundant via lands on the *same net*, so the
      // pad extension bridges from the original via to the new one (one
      // strip covering both, with enclosure). Extend the metal where it
      // is missing, but only when the extension introduces no new
      // spacing violation against other nets.
      const Rect pad = nv.hull(vb).expanded(enc);
      const Region need1 = m1.uncovered(pad);
      const Region need2 = m2.uncovered(pad);
      // The extension may not come closer than min spacing to any metal
      // it does not merge with: probe with a bloat-overlap test against
      // everything outside the pad's own merged island.
      auto extension_legal = [&](const Region& need, const MetalIndex& metal,
                                 Coord space) {
        if (need.empty()) return true;
        // Neighbouring metal within `space` of the extension that does
        // NOT touch the extension would become a spacing violation.
        const Region near = metal.clip(pad.expanded(space + 1));
        for (const Region& comp : near.components()) {
          const Coord d = region_distance(comp, need, space + 1);
          if (d > 0 && d < space) return false;
        }
        return true;
      };
      if (!extension_legal(need1, m1, tech.m1_space)) continue;
      if (!extension_legal(need2, m2, tech.m2_space)) continue;

      accepted.push_back(nv);
      res.new_vias.add(nv);
      res.new_metal1.add(need1);
      res.new_metal2.add(need2);
      ++res.inserted;
      placed = true;
      break;
    }
    if (!placed) ++res.blocked;
  }
  return res;
}

}  // namespace

namespace detail {

ViaDoublingResult double_vias_impl(const LayerMap& layers, const Tech& tech) {
  const std::vector<Rect>& m1_rects = layer_of(layers, layers::kMetal1).rects();
  const std::vector<Rect>& m2_rects = layer_of(layers, layers::kMetal2).rects();
  const RTree m1_tree(m1_rects);
  const RTree m2_tree(m2_rects);
  return double_vias_core(layer_of(layers, layers::kVia1),
                          MetalIndex{&m1_rects, &m1_tree},
                          MetalIndex{&m2_rects, &m2_tree}, tech);
}

}  // namespace detail

ViaDoublingResult double_vias(const LayoutSnapshot& snap, const Tech& tech) {
  static const Region kEmpty;
  static const std::vector<Rect> kNoRects;
  static const RTree kEmptyTree;
  auto index = [&](LayerKey k) {
    return snap.has(k) ? MetalIndex{&snap.layer(k).rects(), &snap.rtree(k)}
                       : MetalIndex{&kNoRects, &kEmptyTree};
  };
  return double_vias_core(
      snap.has(layers::kVia1) ? snap.layer(layers::kVia1).region() : kEmpty,
      index(layers::kMetal1), index(layers::kMetal2), tech);
}

LayoutDelta to_delta(const ViaDoublingResult& result) {
  LayoutDelta delta;
  delta.add(layers::kVia1, result.new_vias);
  delta.add(layers::kMetal1, result.new_metal1);
  delta.add(layers::kMetal2, result.new_metal2);
  return delta;
}

}  // namespace dfm
