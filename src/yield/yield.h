// Defect-limited yield: critical area analysis for shorts and opens with
// square (Chebyshev) defects, the classical power-law defect size
// distribution, Poisson / negative-binomial yield models, and the
// redundant-via insertion engine.
#pragma once

#include "geometry/region.h"
#include "layout/layer_map.h"
#include "layout/tech.h"

#include <functional>
#include <vector>

namespace dfm {

class LayoutDelta;     // core/delta.h
class LayoutSnapshot;  // core/snapshot.h

/// Power-law defect size distribution f(s) ~ 1/s^k on [x0, xmax] — the
/// standard model in the critical-area literature (k = 3 typical).
struct DefectModel {
  double d0 = 1.0;      // defect density, defects per cm^2
  Coord x0 = 40;        // smallest defect, nm
  Coord xmax = 2000;    // largest defect, nm
  double exponent = 3.0;

  /// Normalized pdf at size s (nm^-1); 0 outside [x0, xmax].
  double pdf(Coord s) const;
};

/// Critical area for *shorts* at one defect size: the set of defect
/// centers where a square defect of side `s` bridges two distinct nets
/// (connected components). Exact under the Chebyshev defect model.
Area short_critical_area(const Region& layer, Coord s);

/// Net-aware variant: shapes are grouped into electrical nets first
/// (`net_of[i]` labels `pieces[i]`), so two same-layer shapes joined
/// through another layer do not count as a short. Strictly <= the
/// layer-local estimate.
Area short_critical_area_nets(const std::vector<Region>& pieces,
                              const std::vector<int>& net_of, Coord s);

/// Critical area for *opens* at one defect size: per-band analytic
/// approximation — a square defect of side `s` centered in a wire band of
/// cross-section h contributes (s - h) of breakable strip per unit
/// length. Exact for isolated straight wires; approximate at junctions.
Area open_critical_area(const Region& layer, Coord s);

/// Monte Carlo estimator for opens (connectivity-checked); for
/// cross-validation of the analytic approximation.
Area open_critical_area_mc(const Region& layer, Coord s, int samples,
                           std::uint64_t seed);

/// Expected critical area over the defect size distribution, integrated
/// on a geometric grid of `steps` sizes.
double average_critical_area(const std::function<Area(Coord)>& ca,
                             const DefectModel& model, int steps = 24);

/// Poisson yield: exp(-lambda).
double poisson_yield(double lambda);
/// Negative binomial (clustered defects): (1 + lambda/alpha)^-alpha.
double negative_binomial_yield(double lambda, double alpha);

/// Fault rate lambda for one layer: d0 [cm^-2] x expected critical area,
/// with nm^2 -> cm^2 conversion.
double layer_lambda(const Region& layer, const DefectModel& model,
                    bool shorts, int steps = 24);

// ---- Redundant via insertion ----------------------------------------------

struct ViaDoublingResult {
  int total = 0;            // single-cut via sites examined
  int redundant_before = 0; // sites that already have a redundant partner
  int singles_before = 0;   // sites without redundancy in the input
  int inserted = 0;         // redundant vias successfully added
  int blocked = 0;          // singles with no legal position
  Region new_vias;          // the added via shapes
  Region new_metal1;        // landing-pad extensions added
  Region new_metal2;

  friend bool operator==(const ViaDoublingResult&,
                         const ViaDoublingResult&) = default;
};

namespace detail {
// Shared implementation the snapshot overload routes through.
ViaDoublingResult double_vias_impl(const LayerMap& layers, const Tech& tech);
}  // namespace detail

/// Attempts to add a redundant via beside every isolated via, extending
/// the landing pads when needed; a position is legal when via spacing to
/// every other via is kept and the pad extension creates no new
/// metal-spacing violation. A via already paired with a neighbour on
/// the same landing pads (another cut within two steps whose joint pad
/// is covered on both metals — exactly what an insertion leaves behind)
/// counts as redundant and is left alone, so doubling is idempotent:
/// re-running on a doubled layout inserts nothing. Reads the snapshot's
/// memoized metal R-trees, so every legality probe is local to the
/// candidate pad.
ViaDoublingResult double_vias(const LayoutSnapshot& snap, const Tech& tech);

/// The layout edit a doubling result represents (new vias + pad
/// extensions), as a delta incremental re-analysis can apply.
LayoutDelta to_delta(const ViaDoublingResult& result);

/// Via-limited yield: singles fail at `fail_rate`, doubled pairs at
/// fail_rate^2.
double via_yield(std::int64_t singles, std::int64_t doubles, double fail_rate);

}  // namespace dfm
