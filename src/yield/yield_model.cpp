#include "yield/yield.h"

#include <cmath>

namespace dfm {

double via_yield(std::int64_t singles, std::int64_t doubles,
                 double fail_rate) {
  const double single_ok = 1.0 - fail_rate;
  const double double_ok = 1.0 - fail_rate * fail_rate;
  return std::pow(single_ok, static_cast<double>(singles)) *
         std::pow(double_ok, static_cast<double>(doubles));
}

}  // namespace dfm
