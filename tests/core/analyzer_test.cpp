#include "core/analyzer.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

TEST(DimensionHistogram, BinningAndStats) {
  DimensionHistogram h{10};
  h.add(12);
  h.add(17);
  h.add(25);
  h.add(99, 7);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 90);
  EXPECT_EQ(h.bins().at(10), 2u);
  EXPECT_EQ(h.bins().at(20), 1u);
  EXPECT_EQ(h.percentile(0.1), 10);
  EXPECT_EQ(h.percentile(1.0), 90);
  h.add(-5);  // ignored
  EXPECT_EQ(h.total(), 10u);
}

TEST(ProfileLayer, UniformWiresProfileCleanly) {
  Region layer;
  for (int i = 0; i < 5; ++i) {
    layer.add(Rect{0, i * 150, 2000, i * 150 + 60});  // 60 wide, 90 space
  }
  const LayerProfile p = profile_layer(layer, 500, 5);
  EXPECT_EQ(p.components, 5u);
  EXPECT_EQ(p.widths.min(), 60);
  EXPECT_EQ(p.widths.max(), 60);
  EXPECT_EQ(p.spacings.min(), 90);
  EXPECT_EQ(p.spacings.max(), 90);
  EXPECT_EQ(p.total_area, 5 * 2000 * 60);
  EXPECT_GT(p.density, 0.4);
  EXPECT_LT(p.density, 0.5);
}

TEST(ProfileLayer, MixedWidthsShowUp) {
  Region layer;
  layer.add(Rect{0, 0, 2000, 50});
  layer.add(Rect{0, 150, 2000, 250});  // 100 wide
  const LayerProfile p = profile_layer(layer, 500, 5);
  EXPECT_EQ(p.widths.min(), 50);
  EXPECT_EQ(p.widths.max(), 100);
}

TEST(ProfileLayer, EmptyLayer) {
  const LayerProfile p = profile_layer(Region{}, 500);
  EXPECT_EQ(p.components, 0u);
  EXPECT_TRUE(p.widths.empty());
  EXPECT_DOUBLE_EQ(p.density, 0.0);
}

TEST(CoverageMap, OverlapOfIdenticalIsOne) {
  Region layer;
  for (int i = 0; i < 4; ++i) {
    layer.add(Rect{0, i * 120, 3000, i * 120 + 50});
  }
  const CoverageMap a = dimensional_coverage(layer, 500);
  EXPECT_GT(a.occupied(), 0u);
  EXPECT_DOUBLE_EQ(CoverageMap::overlap(a, a), 1.0);
  EXPECT_TRUE(CoverageMap::uncovered(a, a).empty());
}

TEST(CoverageMap, NewConfigurationIsDetected) {
  // Reference exercises 50-wide / 70-space wires only.
  Region ref;
  for (int i = 0; i < 4; ++i) {
    ref.add(Rect{0, i * 120, 3000, i * 120 + 50});
  }
  // Probe adds a 90-wide / 30-space pair the reference never used.
  Region probe = ref;
  probe.add(Rect{0, 1000, 3000, 1090});
  probe.add(Rect{0, 1120, 3000, 1210});

  const CoverageMap a = dimensional_coverage(ref, 500);
  const CoverageMap b = dimensional_coverage(probe, 500);
  EXPECT_LT(CoverageMap::overlap(a, b), 1.0);
  const auto fresh = CoverageMap::uncovered(a, b);
  ASSERT_FALSE(fresh.empty());
  bool has_wide_tight = false;
  for (const auto& [w, s] : fresh) {
    if (w == 90 && s == 30) has_wide_tight = true;
  }
  EXPECT_TRUE(has_wide_tight)
      << "the unseen 90/30 configuration must be reported";
}

TEST(CoverageMap, GeneratedDesignsShareMostBins) {
  DesignParams p;
  p.rows = 2;
  p.cells_per_row = 5;
  p.routes = 10;
  p.seed = 1;
  const Library a = generate_design(p);
  p.seed = 2;
  const Library b = generate_design(p);
  const CoverageMap ca = dimensional_coverage(
      a.flatten(a.top_cells()[0], layers::kMetal1), 400);
  const CoverageMap cb = dimensional_coverage(
      b.flatten(b.top_cells()[0], layers::kMetal1), 400);
  // Same cell library and process: coverage overlaps strongly.
  EXPECT_GT(CoverageMap::overlap(ca, cb), 0.5);
}

}  // namespace
}  // namespace dfm
