// Coverage for the deprecated auto_fix shim (one release of
// compatibility): the sequential in-place semantics must keep working and
// the result's delta must describe exactly what was applied. The
// replacement API is exercised in fix_engine_test.cpp.
#include "core/autofix.h"

#include "core/recommended_rules.h"
#include "core/snapshot.h"
#include "gen/generators.h"

#include <gtest/gtest.h>

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace dfm {
namespace {

LayerMap layers_of(const Cell& c) {
  LayerMap m;
  for (const LayerKey k : {layers::kMetal1, layers::kMetal2, layers::kVia1}) {
    m.emplace(k, c.local_region(k));
  }
  return m;
}

TEST(AutoFix, RepairsBorderlessVia) {
  const Tech& t = Tech::standard();
  Cell c{"c"};
  add_via(c, t, {0, 0}, ViaStyle::kBorderless);  // bare via: exact match

  LayerMap layers = layers_of(c);
  const DrcPlusDeck deck = DrcPlusDeck::standard(t);
  const DrcPlusEngine engine{deck};
  const DrcPlusResult before = engine.run(LayoutSnapshot(layers));
  ASSERT_GE(before.pattern_match_count(), 1u);

  const AutoFixResult fix = auto_fix(layers, deck, before, t);
  EXPECT_GE(fix.fixed, 1);
  const LayerDelta* dm1 = fix.delta.find(layers::kMetal1);
  ASSERT_NE(dm1, nullptr);
  EXPECT_FALSE(dm1->added.empty());

  // The delta replays the repair: applying it to the pre-fix layers
  // reproduces the fixed layout exactly.
  LayerMap replay = layers_of(c);
  to_delta(fix).apply(replay);
  EXPECT_EQ(replay.at(layers::kMetal1), layers.at(layers::kMetal1));
  EXPECT_EQ(replay.at(layers::kMetal2), layers.at(layers::kMetal2));

  // The repaired layout passes the full-enclosure recommended rule.
  const auto rules = standard_recommended_rules(t);
  const Region& via = layers.at(layers::kVia1);
  EXPECT_TRUE((via.bloated(t.via_enclosure) - layers.at(layers::kMetal1)).empty());
  EXPECT_TRUE((via.bloated(t.via_enclosure) - layers.at(layers::kMetal2)).empty());

  // And the matcher no longer fires on it.
  const DrcPlusResult after = engine.run(LayoutSnapshot(layers));
  std::size_t borderless_hits = 0;
  for (std::size_t si = 0; si < deck.pattern_sets.size(); ++si) {
    for (const PatternMatch& m : after.matches[si]) {
      if (deck.pattern_sets[si].rules[m.rule_index].name ==
          "DFM.VIA.BORDERLESS") {
        ++borderless_hits;
      }
    }
  }
  EXPECT_EQ(borderless_hits, 0u);
  (void)rules;
}

TEST(AutoFix, SkipsWhenRepairWouldViolateSpacing) {
  const Tech& t = Tech::standard();
  Cell c{"c"};
  add_via(c, t, {0, 0}, ViaStyle::kBorderless);
  // A hostile neighbour too close to where the pad must grow (the
  // neighbour also changes the window pattern, so aim the fixer by hand).
  const Coord pad_edge = t.via_size / 2 + t.via_enclosure;
  c.add(layers::kMetal1,
        Rect{pad_edge + t.m1_space - 5, -100, pad_edge + t.m1_space + 95, 100});

  LayerMap layers = layers_of(c);
  const DrcPlusDeck deck = DrcPlusDeck::standard(t);
  DrcPlusResult fake;
  fake.matches.resize(deck.pattern_sets.size());
  PatternMatch m;
  m.rule_index = 0;  // DFM.VIA.BORDERLESS in the via set
  m.window = Rect{-150, -150, 150, 150};
  m.anchor = {0, 0};
  fake.matches[1].push_back(m);

  const Region m1_before = layers.at(layers::kMetal1);
  const AutoFixResult fix = auto_fix(layers, deck, fake, t);
  // The via fix must be refused; the layout stays untouched by it.
  EXPECT_EQ(fix.skipped, 1);
  EXPECT_EQ(fix.fixed, 0);
  EXPECT_EQ(layers.at(layers::kMetal1), m1_before);
}

TEST(AutoFix, WidensPinchWhenRoomExists) {
  const Tech& t = Tech::standard();
  Cell c{"c"};
  // A pinch-like corridor with relaxed gaps (1.5x min space): room to
  // widen the middle line.
  const Coord w = t.m1_width;
  const Coord s = t.m1_space + t.m1_space / 2;
  const Coord len = 14 * w;
  c.add(layers::kMetal1, Rect{0, 0, len, 3 * w});
  c.add(layers::kMetal1, Rect{0, 3 * w + s, len, 4 * w + s});
  c.add(layers::kMetal1, Rect{0, 4 * w + 2 * s, len, 7 * w + 2 * s});

  LayerMap layers = layers_of(c);
  const Region middle_before =
      layers.at(layers::kMetal1).clipped(Rect{0, 3 * w + s, len, 4 * w + s});
  // Build a match by hand (the relaxed corridor is not the exact deck
  // pattern): aim the pinch fixer at the middle line's window.
  DrcPlusDeck deck = DrcPlusDeck::standard(t);
  DrcPlusResult fake;
  fake.matches.resize(deck.pattern_sets.size());
  PatternMatch m;
  m.rule_index = 0;  // DFM.PINCH.1 is the first M1 rule
  m.window = Rect{len / 2 - 400, 0, len / 2 + 400, 7 * w + 2 * s};
  m.anchor = m.window.center();
  fake.matches[0].push_back(m);

  const AutoFixResult fix = auto_fix(layers, deck, fake, t);
  EXPECT_EQ(fix.fixed, 1);
  // The middle line is wider now.
  const Region middle_after =
      layers.at(layers::kMetal1).clipped(Rect{0, 2 * w, len, 5 * w + 2 * s});
  EXPECT_GT(middle_after.area(), middle_before.area());
  // And no new DRC spacing violation was created.
  EXPECT_TRUE(
      check_min_spacing(layers.at(layers::kMetal1), t.m1_space, "S").empty());
}

TEST(AutoFix, NoMatchesNoChanges) {
  const Tech& t = Tech::standard();
  Cell c{"c"};
  add_via(c, t, {0, 0}, ViaStyle::kSymmetric);
  LayerMap layers = layers_of(c);
  const DrcPlusDeck deck = DrcPlusDeck::standard(t);
  const DrcPlusResult res = DrcPlusEngine{deck}.run(LayoutSnapshot(layers));
  const AutoFixResult fix = auto_fix(layers, deck, res, t);
  EXPECT_EQ(fix.attempted, 0);
  EXPECT_EQ(fix.fixed, 0);
}

}  // namespace
}  // namespace dfm
