// The deprecated Library/LayerMap shims (core/compat.h) must keep
// producing bit-identical results to the canonical snapshot-first API
// until they are removed. No other in-tree code includes compat.h — the
// strict build (-Werror=deprecated-declarations) enforces that — so
// this suite is the shims' only exercise and deliberately silences the
// deprecation warnings it triggers.
#include "core/compat.h"

#include "core/drc_plus.h"
#include "core/recommended_rules.h"
#include "core/snapshot.h"
#include "drc/engine.h"
#include "gen/generators.h"
#include "layout/connectivity.h"
#include "pattern/catalog.h"
#include "yield/yield.h"

#include <gtest/gtest.h>

#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dfm {
namespace {

LayerMap flow_layers(const Library& lib, std::uint32_t top) {
  LayerMap m;
  for (const LayerKey k : LayoutSnapshot::standard_flow_layers()) {
    m.emplace(k, lib.flatten(top, k));
  }
  return m;
}

struct Fixture {
  Library lib;
  std::uint32_t top;
  LayerMap layers;

  Fixture() : lib(make()), top(lib.top_cells()[0]), layers(flow_layers(lib, top)) {}

  static Library make() {
    DesignParams p;
    p.seed = 99;
    p.rows = 2;
    p.cells_per_row = 4;
    p.routes = 8;
    p.via_fields = 1;
    p.vias_per_field = 16;
    return generate_design(p);
  }
};

TEST(CompatShims, DrcMatchesSnapshotPath) {
  const Fixture f;
  const DrcEngine engine{RuleDeck::standard(Tech::standard())};
  const DrcResult via_map = engine.run(f.layers);
  const DrcResult via_lib = engine.run(f.lib, f.top);
  const DrcResult canon = engine.run(LayoutSnapshot(f.layers));
  ASSERT_EQ(via_map.violations.size(), canon.violations.size());
  ASSERT_EQ(via_lib.violations.size(), canon.violations.size());
  for (std::size_t i = 0; i < canon.violations.size(); ++i) {
    EXPECT_EQ(via_map.violations[i].rule, canon.violations[i].rule);
    EXPECT_EQ(via_map.violations[i].marker, canon.violations[i].marker);
    EXPECT_EQ(via_lib.violations[i].rule, canon.violations[i].rule);
    EXPECT_EQ(via_lib.violations[i].marker, canon.violations[i].marker);
  }
}

TEST(CompatShims, DrcPlusMatchesSnapshotPath) {
  const Fixture f;
  const DrcPlusEngine engine{DrcPlusDeck::standard(Tech::standard())};
  const DrcPlusResult legacy = engine.run(f.layers);
  const DrcPlusResult canon = engine.run(LayoutSnapshot(f.layers));
  EXPECT_EQ(legacy.drc.violations.size(), canon.drc.violations.size());
  ASSERT_EQ(legacy.matches.size(), canon.matches.size());
  for (std::size_t i = 0; i < canon.matches.size(); ++i) {
    EXPECT_EQ(legacy.matches[i].size(), canon.matches[i].size());
  }
}

TEST(CompatShims, NetExtractionAndViasMatchSnapshotPath) {
  const Fixture f;
  const auto stack = standard_stack();
  const Netlist legacy = extract_nets(f.layers, stack);
  const LayoutSnapshot snap(f.layers);
  const Netlist canon = extract_nets(snap, stack);
  EXPECT_EQ(legacy.nets.size(), canon.nets.size());
  EXPECT_EQ(find_floating_cuts(f.layers, stack).size(),
            find_floating_cuts(snap, stack).size());
  const ViaDoublingResult va = double_vias(f.layers, Tech::standard());
  const ViaDoublingResult vb = double_vias(snap, Tech::standard());
  EXPECT_EQ(va, vb);
}

TEST(CompatShims, CatalogAndRecommendedMatchSnapshotPath) {
  const Fixture f;
  const std::vector<LayerKey> on = {layers::kVia1, layers::kMetal1,
                                    layers::kMetal2};
  const PatternCatalog legacy = build_catalog(f.layers, on, layers::kVia1, 120);
  const LayoutSnapshot snap(f.layers);
  const PatternCatalog canon = build_catalog(snap, on, layers::kVia1, 120);
  EXPECT_EQ(legacy.total_windows(), canon.total_windows());
  EXPECT_EQ(legacy.class_count(), canon.class_count());

  const auto rules = standard_recommended_rules(Tech::standard());
  const RecommendedResult ra = check_recommended(f.layers, rules);
  const RecommendedResult rb = check_recommended(snap, rules);
  EXPECT_EQ(ra, rb);
}

}  // namespace
}  // namespace dfm
