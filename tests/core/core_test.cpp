#include "core/dfm_flow.h"

#include "core/report.h"
#include "gen/generators.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

TEST(Scorecard, WeightedComposite) {
  DfmScorecard s;
  s.add("a", 1.0, 1.0);
  s.add("b", 0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.composite(), 0.5);
  s.add("c", 1.0, 2.0);
  EXPECT_DOUBLE_EQ(s.composite(), 0.75);
  EXPECT_DOUBLE_EQ(DfmScorecard{}.composite(), 0.0);
}

TEST(Scorecard, ValuesClamped) {
  DfmScorecard s;
  s.add("hot", 1.7);
  s.add("cold", -0.3);
  EXPECT_DOUBLE_EQ(s.metrics[0].value, 1.0);
  EXPECT_DOUBLE_EQ(s.metrics[1].value, 0.0);
}

TEST(Scoring, CountScoreDecays) {
  EXPECT_DOUBLE_EQ(score_from_count(0), 1.0);
  EXPECT_DOUBLE_EQ(score_from_count(4, 4.0), 0.5);
  EXPECT_GT(score_from_count(1), score_from_count(10));
}

TEST(TableFormat, AlignsColumns) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Column alignment: both value entries start at the same offset.
  const auto l1 = s.find("alpha  1");
  EXPECT_NE(l1, std::string::npos);
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::percent(0.5), "50.0%");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
}

LayerMap layers_of_cell(const Cell& c) {
  LayerMap m;
  for (const LayerKey k : {layers::kMetal1, layers::kMetal2, layers::kVia1}) {
    m.emplace(k, c.local_region(k));
  }
  return m;
}

TEST(DrcPlus, StandardDeckHasPatternRules) {
  const DrcPlusDeck deck = DrcPlusDeck::standard(Tech::standard());
  ASSERT_EQ(deck.pattern_sets.size(), 2u);
  EXPECT_EQ(deck.pattern_sets[0].rules.size(), 2u);  // pinch + bridge
  EXPECT_EQ(deck.pattern_sets[1].rules.size(), 1u);  // borderless via
  for (const auto& set : deck.pattern_sets) {
    for (const auto& rule : set.rules) {
      EXPECT_FALSE(rule.pattern.empty());
      EXPECT_FALSE(rule.guidance.empty());
    }
  }
}

TEST(DrcPlus, CatchesWhatDrcMisses) {
  const Tech& t = Tech::standard();
  Cell c{"c"};
  inject_pinch_candidate(c, t, {0, 0});
  inject_bridge_candidate(c, t, {30000, 0});
  add_via(c, t, {60000, 0}, ViaStyle::kBorderless);
  add_via(c, t, {70000, 0}, ViaStyle::kSymmetric);

  const DrcPlusEngine engine{DrcPlusDeck::standard(t)};
  const DrcPlusResult res = engine.run(LayoutSnapshot(layers_of_cell(c)));

  // Plain DRC: everything above is geometrically legal.
  int geometric = 0;
  for (const Violation& v : res.drc.violations) {
    if (v.rule.find(".D.") == std::string::npos &&
        v.rule.find(".A.") == std::string::npos) {
      ++geometric;
    }
  }
  EXPECT_EQ(geometric, 0);
  // DRC-Plus: all three constructs found.
  EXPECT_GE(res.pattern_match_count(), 3u);
}

TEST(DrcPlus, CleanDesignHasNoPatternHits) {
  const Tech& t = Tech::standard();
  Cell c{"c"};
  add_via(c, t, {0, 0}, ViaStyle::kSymmetric);
  c.add(layers::kMetal1, Rect{5000, 0, 5200, 2000});
  const DrcPlusEngine engine{DrcPlusDeck::standard(t)};
  EXPECT_EQ(engine.run(LayoutSnapshot(layers_of_cell(c))).pattern_match_count(),
            0u);
}

TEST(RecommendedRules, BorderlessViaViolatesFullEnclosure) {
  const Tech& t = Tech::standard();
  Cell good{"g"}, bad{"b"};
  add_via(good, t, {0, 0}, ViaStyle::kSymmetric);
  add_via(bad, t, {0, 0}, ViaStyle::kBorderless);
  // Connect the pads to wires so the min-area recommendation is met and
  // only the enclosure difference separates the two designs.
  good.add(layers::kMetal1, Rect{0, -25, 2000, 25});
  bad.add(layers::kMetal1, Rect{0, -25, 2000, 25});
  const auto rules = standard_recommended_rules(t);
  const RecommendedResult g =
      check_recommended(LayoutSnapshot(layers_of_cell(good)), rules);
  const RecommendedResult b =
      check_recommended(LayoutSnapshot(layers_of_cell(bad)), rules);
  EXPECT_GT(g.compliance(), b.compliance());
  EXPECT_DOUBLE_EQ(g.compliance(), 1.0);
}

TEST(HotspotFlow, LearnsAndFindsInjectedHotspots) {
  const Tech& t = Tech::standard();
  OpticalModel model;
  model.sigma = 30;
  model.px = 5;

  // Training design: two pinch corridors.
  Cell train{"t"};
  inject_pinch_candidate(train, t, {0, 0});
  inject_pinch_candidate(train, t, {8000, 0});
  const Region train_m1 = train.local_region(layers::kMetal1);

  HotspotFlowOptions params;
  params.model = model;
  params.snippet_radius = 350;
  params.edge_tolerance = 12;
  const HotspotLibrary lib =
      build_hotspot_library(train_m1, train_m1.bbox().expanded(200), params);
  ASSERT_GT(lib.training_hotspots, 0u);
  ASSERT_FALSE(lib.classes.empty());
  // Two identical corridors: their snippets share classes, so the class
  // count stays well below the hotspot count.
  EXPECT_LT(lib.classes.size(), lib.training_hotspots);

  // Target design: one pinch corridor somewhere else + innocuous wiring.
  Cell target{"x"};
  inject_pinch_candidate(target, t, {500, 300});
  target.add(layers::kMetal1, Rect{10000, 0, 10300, 3000});
  const Region target_m1 = target.local_region(layers::kMetal1);
  const auto matches = scan_for_hotspots(
      target_m1, target_m1.bbox().expanded(200), lib, params);
  ASSERT_FALSE(matches.empty()) << "the corridor must be re-found";
  // All matches land on the corridor, not the fat innocuous wire.
  for (const HotspotMatch& m : matches) {
    EXPECT_LT(m.window.lo.x, 9000) << "false positive on clean wiring";
  }
}

TEST(DfmFlow, RunsEndToEndOnGeneratedDesign) {
  DesignParams p;
  p.seed = 77;
  p.rows = 2;
  p.cells_per_row = 5;
  p.routes = 12;
  p.via_fields = 1;
  p.vias_per_field = 24;
  const Library lib = generate_design(p);

  DfmFlowOptions opt;
  opt.tech = p.tech;
  opt.model.sigma = 30;
  opt.model.px = 5;
  opt.run_litho = false;  // keep the unit test fast; litho has own tests
  const DfmFlowReport rep = run_dfm_flow(lib, lib.top_cells()[0], opt);

  EXPECT_GT(rep.scorecard.metrics.size(), 4u);
  EXPECT_GT(rep.scorecard.composite(), 0.0);
  EXPECT_LE(rep.scorecard.composite(), 1.0);
  EXPECT_GT(rep.vias.singles_before, 0);
  EXPECT_GE(rep.via_yield_after, rep.via_yield_before);
  EXPECT_GT(rep.defect_yield, 0.0);
  EXPECT_LE(rep.defect_yield, 1.0);
  EXPECT_GE(rep.lambda_shorts, 0.0);
}

TEST(DfmFlow, DirtyDesignScoresWorse) {
  const Tech& t = Tech::standard();
  DesignParams p;
  p.seed = 78;
  p.rows = 1;
  p.cells_per_row = 4;
  p.routes = 6;
  p.via_fields = 0;
  const Library clean = generate_design(p);

  DesignParams p2 = p;
  p2.name = "dirty";
  Library dirty = generate_design(p2);
  const auto top2 = dirty.top_cells()[0];
  Cell& tc = dirty.cell(top2);
  Rng rng(5);
  inject_pathologies(tc, rng, t, Rect{0, -30000, 80000, -2000}, 8);

  DfmFlowOptions opt;
  opt.tech = t;
  opt.run_litho = false;
  const double sc_clean =
      run_dfm_flow(clean, clean.top_cells()[0], opt).scorecard.composite();
  const double sc_dirty = run_dfm_flow(dirty, top2, opt).scorecard.composite();
  EXPECT_GT(sc_clean, sc_dirty);
}

}  // namespace
}  // namespace dfm
