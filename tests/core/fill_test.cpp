#include "core/fill.h"

#include "layout/density.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

FillOptions params() {
  FillOptions p;
  p.square = 200;
  p.spacing = 120;
  p.tile = 2000;
  p.target_min = 0.15;
  return p;
}

TEST(Fill, EmptyExtentBecomesUniform) {
  const Rect extent{0, 0, 8000, 8000};
  const FillResult res = insert_fill(Region{}, extent, params());
  EXPECT_EQ(res.tiles_below, 16);
  EXPECT_EQ(res.tiles_fixed, 16);
  const DensityMap after = density_map(res.fill, extent, 2000);
  EXPECT_GE(after.min(), 0.15);
}

TEST(Fill, DenseTilesAreLeftAlone) {
  Region layer{Rect{0, 0, 2000, 2000}};  // tile 0 fully covered
  const Rect extent{0, 0, 4000, 2000};
  const FillResult res = insert_fill(layer, extent, params());
  EXPECT_EQ(res.tiles_below, 1);  // only the right tile
  // No fill over the dense tile.
  EXPECT_TRUE(res.fill.clipped(Rect{0, 0, 2000, 2000}).empty());
  EXPECT_FALSE(res.fill.empty());
}

TEST(Fill, KeepsMoatFromRealGeometry) {
  Region layer{Rect{3000, 3000, 3400, 3400}};  // a small island
  const Rect extent{0, 0, 8000, 8000};
  const FillOptions p = params();
  const FillResult res = insert_fill(layer, extent, p);
  ASSERT_FALSE(res.fill.empty());
  EXPECT_GE(region_distance(res.fill, layer, p.spacing + 10), p.spacing);
}

TEST(Fill, FillSquaresKeepSpacingFromEachOther) {
  const Rect extent{0, 0, 6000, 6000};
  const FillOptions p = params();
  const FillResult res = insert_fill(Region{}, extent, p);
  // Every pair of fill squares is >= spacing apart: the merged fill must
  // have exactly `squares` components (nothing merged).
  EXPECT_EQ(res.fill.components().size(),
            static_cast<std::size_t>(res.squares));
  // And a closing at just under the moat must not connect anything.
  EXPECT_EQ(res.fill.closed(p.spacing / 2 - 1).components().size(),
            static_cast<std::size_t>(res.squares));
}

TEST(Fill, RespectsTargetWithoutFlooding) {
  const Rect extent{0, 0, 4000, 4000};
  FillOptions p = params();
  p.target_min = 0.10;
  const FillResult res = insert_fill(Region{}, extent, p);
  const DensityMap after = density_map(res.fill, extent, p.tile);
  EXPECT_GE(after.min(), 0.0999);  // epsilon: fill stops exactly at target
  // Fill stops near the target rather than maximizing.
  EXPECT_LE(after.max(), 0.25);
}

TEST(Fill, CrowdedTileCanBeUnfixable) {
  // A picket fence leaves no room for legal fill, but the tile is sparse.
  Region layer;
  for (Coord x = 0; x < 2000; x += 260) {
    layer.add(Rect{x, 0, x + 30, 2000});  // thin pickets: ~11% density
  }
  const Rect extent{0, 0, 2000, 2000};
  const FillResult res = insert_fill(layer, extent, params());
  EXPECT_EQ(res.tiles_below, 1);
  EXPECT_EQ(res.tiles_fixed, 0);
  EXPECT_TRUE(res.fill.empty());
}

}  // namespace
}  // namespace dfm
