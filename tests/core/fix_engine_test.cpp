// FixEngine: plan determinism and ordering, move filtering,
// normalize/inverse delta round-trips, and the score-gated loop's
// contract — accepted fixes strictly raise the composite, rejected ones
// roll back bit for bit, and the post-fix report equals a cold re-run
// over the fixed layout at every thread count.
#include "core/fix_engine.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dfm {
namespace {

/// A small design with enough trouble to propose against: generated
/// routes and via fields (the heavy-tailed style mix includes borderless
/// vias) plus injected pathologies in a strip below the core.
Library violation_rich(std::uint64_t seed) {
  DesignParams p;
  p.seed = seed;
  p.name = "fix" + std::to_string(seed);
  p.rows = 1;
  p.cells_per_row = 3;
  p.routes = 5;
  p.via_fields = 1;
  p.vias_per_field = 12;
  Library lib = generate_design(p);
  const std::uint32_t top = lib.top_cells()[0];
  Rng rng(seed ^ 0xF1F1);
  const Rect core = lib.bbox(top);
  const Rect strip{core.lo.x, core.lo.y - 20000, core.hi.x,
                   core.lo.y - 2000};
  inject_pathologies(lib.cell(top), rng, p.tech, strip, 4);
  return lib;
}

DfmFlowOptions fix_flow_options(unsigned threads) {
  DfmFlowOptions o;
  o.threads = threads;
  o.tech = Tech::standard();
  o.model.sigma = 20;
  o.model.px = 10;
  o.litho_tile = 8000;
  o.run_litho = false;  // the loop re-runs the flow constantly; keep it fast
  return o;
}

LayerMap flow_layers(const Library& lib, std::uint32_t top) {
  LayerMap m;
  for (const LayerKey k : LayoutSnapshot::standard_flow_layers()) {
    m.emplace(k, lib.flatten(top, k));
  }
  return m;
}

std::string plan_signature(const FixPlan& plan) {
  std::string sig;
  for (const FixProposal& p : plan.proposals) {
    sig += fix_kind_name(p.kind);
    sig += '|';
    sig += p.rule;
    sig += '|';
    sig += to_string(p.site);
    sig += '\n';
  }
  return sig;
}

TEST(FixKindNames, RoundTrip) {
  for (const FixKind k :
       {FixKind::kPatternVia, FixKind::kPatternPinch, FixKind::kViaDouble,
        FixKind::kSpread, FixKind::kRetarget, FixKind::kFill}) {
    const auto parsed = parse_fix_kind(fix_kind_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_fix_kind("bogus").has_value());
  EXPECT_FALSE(parse_fix_kind("").has_value());
}

TEST(FixOptions, MovesFilter) {
  FixOptions all;
  EXPECT_TRUE(all.enabled(FixKind::kViaDouble));
  EXPECT_TRUE(all.enabled(FixKind::kFill));
  FixOptions some;
  some.moves = {"via_double", "spread"};
  EXPECT_TRUE(some.enabled(FixKind::kViaDouble));
  EXPECT_TRUE(some.enabled(FixKind::kSpread));
  EXPECT_FALSE(some.enabled(FixKind::kPatternVia));
  EXPECT_FALSE(some.enabled(FixKind::kFill));
}

TEST(FixPlan, DeterministicAndPure) {
  const Library lib = violation_rich(11);
  DfmFlowSession session(lib, lib.top_cells()[0], fix_flow_options(2));
  const FixOptions fo;
  const FixPlan a =
      FixEngine::run(session.snapshot(), session.report(), fo);
  const FixPlan b =
      FixEngine::run(session.snapshot(), session.report(), fo);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(plan_signature(a), plan_signature(b));
  // Planning is side-effect-free: the session's report is untouched.
  const FixPlan c =
      FixEngine::run(session.snapshot(), session.report(), fo);
  EXPECT_EQ(plan_signature(a), plan_signature(c));
}

TEST(FixPlan, MovesRestrictTheProposalKinds) {
  const Library lib = violation_rich(11);
  DfmFlowSession session(lib, lib.top_cells()[0], fix_flow_options(1));
  FixOptions only_vias;
  only_vias.moves = {"via_double"};
  const FixPlan plan =
      FixEngine::run(session.snapshot(), session.report(), only_vias);
  for (const FixProposal& p : plan.proposals) {
    EXPECT_EQ(p.kind, FixKind::kViaDouble);
  }
  const FixPlan full =
      FixEngine::run(session.snapshot(), session.report(), FixOptions{});
  EXPECT_LE(plan.proposals.size(), full.proposals.size());
}

TEST(FixDelta, NormalizeInverseRestoresReportBitForBit) {
  const Library lib = violation_rich(23);
  DfmFlowSession session(lib, lib.top_cells()[0], fix_flow_options(2));
  const DfmFlowReport before = session.report();  // copy

  // An edit that half-overlaps existing metal (normalization must trim
  // the overlap for the inverse to be exact) plus a removal.
  const Rect bb = session.snapshot().bbox();
  LayoutDelta delta;
  delta.add(layers::kMetal1,
            Rect{bb.lo.x + 100, bb.lo.y + 100, bb.lo.x + 900, bb.lo.y + 400});
  delta.remove(layers::kMetal2,
               Rect{bb.lo.x + 2000, bb.lo.y + 2000, bb.lo.x + 2600,
                    bb.lo.y + 2500});
  const LayoutDelta norm = normalize_delta(delta, session.snapshot());

  session.apply(norm);
  session.apply(inverse_delta(norm));
  // Every analysis field restored exactly (doubles compared bitwise);
  // only the trace's incremental accounting moved.
  EXPECT_TRUE(reports_equivalent(session.report(), before));
}

TEST(FixDelta, NormalizedApplyReachesTheSameEndState) {
  const Library lib = violation_rich(23);
  const std::uint32_t top = lib.top_cells()[0];
  const Rect bb = lib.bbox(top);
  LayoutDelta delta;
  delta.add(layers::kMetal1,
            Rect{bb.lo.x + 100, bb.lo.y + 100, bb.lo.x + 900, bb.lo.y + 400});
  delta.remove(layers::kVia1, Rect{bb.lo.x, bb.lo.y, bb.center().x,
                                   bb.center().y});

  DfmFlowSession raw(lib, top, fix_flow_options(1));
  DfmFlowSession normed(lib, top, fix_flow_options(1));
  const LayoutDelta norm = normalize_delta(delta, normed.snapshot());
  raw.apply(delta);
  normed.apply(norm);
  // Same end state (the normalized delta may dirty less, so the traces'
  // incremental accounting can differ — compare the analysis content).
  EXPECT_TRUE(reports_equivalent(raw.report(), normed.report()));
}

TEST(FixLoop, AcceptsOnlyStrictCompositeImprovements) {
  const Library lib = violation_rich(31);
  DfmFlowSession session(lib, lib.top_cells()[0], fix_flow_options(2));
  FixOptions fo;
  fo.max_iters = 3;
  const FixOutcome out = FixEngine::fix(session, fo);

  EXPECT_EQ(out.accepted + out.rejected, out.proposed);
  EXPECT_EQ(static_cast<int>(out.steps.size()), out.proposed);
  EXPECT_GE(out.composite_after, out.composite_before);
  for (const FixStep& s : out.steps) {
    if (s.accepted) {
      EXPECT_GT(s.gain, fo.min_gain) << fix_kind_name(s.kind);
      EXPECT_TRUE(s.reject.empty());
    } else {
      EXPECT_FALSE(s.reject.empty());
    }
  }
  // The outcome's composite_after is the session's live composite.
  EXPECT_EQ(out.composite_after, session.report().scorecard.composite());
}

TEST(FixLoop, PostFixReportMatchesColdRerunAtEveryThreadCount) {
  const Library lib = violation_rich(47);
  const std::uint32_t top = lib.top_cells()[0];
  DfmFlowSession session(lib, top, fix_flow_options(2));
  const FixOutcome out = FixEngine::fix(session, FixOptions{});

  // `applied` replayed onto the pre-fix layout, cold, at 1/2/8 threads:
  // every cold run matches the incremental session field for field, and
  // the cold runs themselves are byte-identical to each other.
  std::string cold_bytes;
  for (const unsigned threads : {1u, 2u, 8u}) {
    LayerMap layers = flow_layers(lib, top);
    out.applied.apply(layers);
    const LayoutSnapshot snap(std::move(layers));
    const DfmFlowReport cold = run_dfm_flow(snap, fix_flow_options(threads));
    EXPECT_TRUE(reports_equivalent(cold, session.report()))
        << "threads=" << threads;
    const std::string bytes = flow_report_canonical_json(cold);
    if (cold_bytes.empty()) {
      cold_bytes = bytes;
    } else {
      EXPECT_EQ(bytes, cold_bytes) << "threads=" << threads;
    }
  }
}

TEST(FixLoop, OutcomeBytesIdenticalAcrossThreadCounts) {
  const Library lib = violation_rich(59);
  const std::uint32_t top = lib.top_cells()[0];
  std::vector<std::string> outcomes;
  for (const unsigned threads : {1u, 2u, 8u}) {
    DfmFlowSession session(lib, top, fix_flow_options(threads));
    outcomes.push_back(fix_outcome_json(FixEngine::fix(session, FixOptions{})));
  }
  EXPECT_EQ(outcomes[0], outcomes[1]);
  EXPECT_EQ(outcomes[0], outcomes[2]);
}

TEST(FixLoop, MaxItersZeroStillRunsOneRound) {
  const Library lib = violation_rich(11);
  DfmFlowSession session(lib, lib.top_cells()[0], fix_flow_options(1));
  FixOptions fo;
  fo.max_iters = 0;
  const FixOutcome out = FixEngine::fix(session, fo);
  EXPECT_LE(out.iterations, 1);
}

}  // namespace
}  // namespace dfm
