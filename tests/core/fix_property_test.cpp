// Property sweep for the score-gated fix loop, over 100 seeded layouts:
//  (a) every accepted fix strictly raises the composite;
//  (b) the post-fix report is bit-for-bit what a cold re-run over the
//      fixed layout produces, at 1/2/8 threads;
//  (c) the loop's outcome bytes are thread-count invariant.
// (The served-vs-direct leg of the property lives in
// tests/service/service_test.cpp, which can link the service library.)
#include "core/fix_engine.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

#include <string>

namespace dfm {
namespace {

/// Tiny but trouble-rich: a couple of cells, a via field with the
/// heavy-tailed style mix (borderless vias included), two injected
/// pathologies below the core.
Library tiny_design(std::uint64_t seed) {
  DesignParams p;
  p.seed = seed;
  p.name = "prop" + std::to_string(seed);
  p.rows = 1;
  p.cells_per_row = 2;
  p.routes = 3;
  p.via_fields = 1;
  p.vias_per_field = 6;
  Library lib = generate_design(p);
  const std::uint32_t top = lib.top_cells()[0];
  Rng rng(seed * 0x9E3779B97F4A7C15ull);
  const Rect core = lib.bbox(top);
  const Rect strip{core.lo.x, core.lo.y - 16000, core.hi.x,
                   core.lo.y - 2000};
  inject_pathologies(lib.cell(top), rng, p.tech, strip, 2);
  return lib;
}

DfmFlowOptions prop_options(unsigned threads) {
  DfmFlowOptions o;
  o.threads = threads;
  o.tech = Tech::standard();
  o.model.sigma = 20;
  o.model.px = 10;
  o.litho_tile = 8000;
  o.run_litho = false;  // 100 seeds x several flow runs each: keep it fast
  return o;
}

TEST(FixLoopProperty, HundredSeededLayouts) {
  int total_accepted = 0;
  int improved_layouts = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Library lib = tiny_design(seed);
    const std::uint32_t top = lib.top_cells()[0];

    DfmFlowSession session(lib, top, prop_options(1));
    FixOptions fo;
    fo.max_iters = 2;
    const FixOutcome out = FixEngine::fix(session, fo);

    // (a) the gate: accepted => strictly positive measured gain, and the
    // composite never regresses end to end.
    for (const FixStep& s : out.steps) {
      if (s.accepted) {
        ASSERT_GT(s.gain, 0.0) << fix_kind_name(s.kind);
      }
    }
    ASSERT_GE(out.composite_after, out.composite_before);
    total_accepted += out.accepted;
    if (out.composite_after > out.composite_before) ++improved_layouts;

    // (b) post-fix == cold re-run over the fixed layout at every thread
    // count: field-for-field against the incremental session (the trace's
    // incremental accounting legitimately differs), byte-for-byte between
    // the cold runs.
    std::string cold_bytes;
    for (const unsigned threads : {1u, 2u, 8u}) {
      LayerMap layers;
      for (const LayerKey k : LayoutSnapshot::standard_flow_layers()) {
        layers.emplace(k, lib.flatten(top, k));
      }
      out.applied.apply(layers);
      const LayoutSnapshot snap(std::move(layers));
      const DfmFlowReport cold = run_dfm_flow(snap, prop_options(threads));
      ASSERT_TRUE(reports_equivalent(cold, session.report()))
          << "threads=" << threads;
      const std::string bytes = flow_report_canonical_json(cold);
      if (cold_bytes.empty()) {
        cold_bytes = bytes;
      } else {
        ASSERT_EQ(bytes, cold_bytes) << "threads=" << threads;
      }
    }

    // (c) outcome bytes thread-invariant (spot-check a second count on a
    // fresh session; the full 1/2/8 sweep is in fix_engine_test.cpp).
    if (seed % 10 == 0) {
      DfmFlowSession again(lib, top, prop_options(8));
      ASSERT_EQ(fix_outcome_json(FixEngine::fix(again, fo)),
                fix_outcome_json(out));
    }
  }
  // The sweep must actually exercise the accept path, or (a) is vacuous.
  EXPECT_GT(total_accepted, 0);
  EXPECT_GT(improved_layouts, 0);
}

}  // namespace
}  // namespace dfm
