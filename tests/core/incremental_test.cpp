// Incremental re-analysis: LayoutDelta / IncrementalSnapshot semantics
// and the hard flow guarantee — a DfmFlowSession report after any edit
// sequence is bit-identical to a cold run over the edited layout, at
// every thread count.
#include "core/incremental.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

namespace dfm {
namespace {

LayerMap flow_layers(const Library& lib, std::uint32_t top) {
  LayerMap m;
  for (const LayerKey k : LayoutSnapshot::standard_flow_layers()) {
    m.emplace(k, lib.flatten(top, k));
  }
  return m;
}

LayerMap small_design(std::uint64_t seed) {
  DesignParams p;
  p.seed = seed;
  p.rows = 2;
  p.cells_per_row = 4;
  p.routes = 8;
  p.via_fields = 1;
  p.vias_per_field = 16;
  const Library lib = generate_design(p);
  return flow_layers(lib, lib.top_cells()[0]);
}

DfmFlowOptions fast_options(unsigned threads, bool litho = false) {
  DfmFlowOptions o;
  o.threads = threads;
  o.tech = Tech::standard();
  o.model.sigma = 20;
  o.model.px = 10;  // coarse raster: litho correctness, not resolution
  o.litho_tile = 6000;
  o.run_litho = litho;
  return o;
}

/// Shrinks `bb` towards its centre, by at most `d` per side but never
/// past a quarter of the extent, so the result stays a valid rect even
/// on small designs.
Rect interior(const Rect& bb, Coord d = 1500) {
  const Coord dx = std::min(d, (bb.hi.x - bb.lo.x) / 4);
  const Coord dy = std::min(d, (bb.hi.y - bb.lo.y) / 4);
  return Rect{bb.lo.x + dx, bb.lo.y + dy, bb.hi.x - dx, bb.hi.y - dy};
}

/// A random edit strictly inside `core` (so the joint bbox is stable and
/// the incremental path never falls back to a full re-run).
LayoutDelta random_edit(Rng& rng, const Rect& core) {
  static const std::vector<LayerKey> kEditable = {
      layers::kMetal1, layers::kMetal2, layers::kVia1};
  const LayerKey layer = rng.pick(kEditable);
  const Coord w = rng.uniform(40, 400);
  const Coord h = rng.uniform(40, 400);
  const Coord x = rng.uniform(core.lo.x, core.hi.x - w);
  const Coord y = rng.uniform(core.lo.y, core.hi.y - h);
  LayoutDelta d;
  if (rng.chance(0.3)) {
    d.remove(layer, Rect{x, y, x + w, y + h});
  } else {
    d.add(layer, Rect{x, y, x + w, y + h});
  }
  return d;
}

TEST(LayoutDelta, ApplyMatchesSetAlgebra) {
  LayerMap m;
  m.emplace(layers::kMetal1, Region{Rect{0, 0, 100, 100}});
  LayoutDelta d;
  d.add(layers::kMetal1, Rect{50, 0, 150, 100});
  d.remove(layers::kMetal1, Rect{0, 0, 20, 100});
  d.add(layers::kMetal2, Rect{0, 0, 10, 10});  // creates the layer
  d.apply(m);
  const Region want_m1 = (Region{Rect{0, 0, 100, 100}} -
                          Region{Rect{0, 0, 20, 100}}) |
                         Region{Rect{50, 0, 150, 100}};
  const Region want_m2{Rect{0, 0, 10, 10}};
  EXPECT_EQ(m.at(layers::kMetal1), want_m1);
  EXPECT_EQ(m.at(layers::kMetal2), want_m2);
}

TEST(LayoutDelta, EmptyEditsDirtyNothing) {
  LayoutDelta d;
  d.add(layers::kMetal1, Region{});
  d.remove(layers::kMetal2, Rect::empty());
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.dirties(layers::kMetal1));
}

TEST(IncrementalSnapshot, CleanLayersShareDerivedProducts) {
  LayerMap m = small_design(3);
  const LayoutSnapshot base(std::move(m));
  // Build the base's M2 R-tree, then derive with an M1-only edit: the
  // M2 tree must be a cache hit under the derived snapshot too.
  (void)base.rtree(layers::kMetal2);
  LayoutDelta d;
  const Rect inside = base.bbox().expanded(-1000);
  d.add(layers::kMetal1, Rect{inside.lo.x, inside.lo.y, inside.lo.x + 100,
                              inside.lo.y + 100});
  const IncrementalSnapshot inc(base, d);
  EXPECT_TRUE(inc.layer_dirty(layers::kMetal1));
  EXPECT_FALSE(inc.layer_dirty(layers::kMetal2));
  EXPECT_FALSE(inc.bbox_changed());
  const auto before = inc.cache_stats();
  (void)inc.rtree(layers::kMetal2);
  const auto after = inc.cache_stats();
  EXPECT_EQ(after.builds() - before.builds(), 0u)
      << "clean layer must reuse the base's memoized R-tree";
}

TEST(IncrementalSnapshot, DirtyLayerEqualsColdNormalization) {
  LayerMap m = small_design(4);
  const Rect inside = interior(Region(m.at(layers::kMetal1)).bbox(), 2000);
  LayoutDelta d;
  d.add(layers::kMetal1,
        Rect{inside.lo.x, inside.lo.y, inside.lo.x + 500, inside.lo.y + 60});
  d.remove(layers::kMetal1, Rect{inside.hi.x - 400, inside.hi.y - 400,
                                 inside.hi.x, inside.hi.y});

  const LayoutSnapshot base(m);
  const IncrementalSnapshot inc(base, d);
  d.apply(m);
  const LayoutSnapshot cold(std::move(m));
  EXPECT_EQ(inc.layer(layers::kMetal1).region(),
            cold.layer(layers::kMetal1).region());
  EXPECT_EQ(inc.layer(layers::kMetal1).rects(),
            cold.layer(layers::kMetal1).rects())
      << "canonical decomposition must match a from-scratch normalize";
}

TEST(IncrementalSnapshot, BboxMovingEditReportsIt) {
  LayerMap m;
  m.emplace(layers::kMetal1, Region{Rect{0, 0, 1000, 1000}});
  const LayoutSnapshot base(std::move(m));
  LayoutDelta grow;
  grow.add(layers::kMetal1, Rect{2000, 0, 3000, 1000});
  EXPECT_TRUE(IncrementalSnapshot(base, grow).bbox_changed());
  LayoutDelta inner;
  inner.add(layers::kMetal1, Rect{100, 100, 200, 200});
  EXPECT_FALSE(IncrementalSnapshot(base, inner).bbox_changed());
}

TEST(CanonicalFlowPass, ResolvesAliases) {
  EXPECT_EQ(canonical_flow_pass("drc"), "drc_plus");
  EXPECT_EQ(canonical_flow_pass("vias"), "via_doubling");
  EXPECT_EQ(canonical_flow_pass("caa"), "caa_yield");
  EXPECT_EQ(canonical_flow_pass("nets"), "connectivity");
  EXPECT_EQ(canonical_flow_pass("litho"), "litho");
  EXPECT_EQ(canonical_flow_pass("bogus"), "");
}

TEST(DfmFlow, PassSubsetRunsOnlyRequestedPasses) {
  LayerMap m = small_design(5);
  DfmFlowOptions opt = fast_options(1);
  opt.passes = {"drc", "vias"};
  const DfmFlowReport rep = run_dfm_flow(LayoutSnapshot(std::move(m)), opt);
  EXPECT_NE(rep.trace.find("drc_plus"), nullptr);
  EXPECT_NE(rep.trace.find("via_doubling"), nullptr);
  EXPECT_EQ(rep.trace.find("dpt"), nullptr);
  EXPECT_EQ(rep.trace.find("connectivity"), nullptr);
  EXPECT_TRUE(rep.nets.nets.empty());
}

TEST(DfmFlow, CaaPullsInConnectivity) {
  LayerMap m = small_design(5);
  DfmFlowOptions opt = fast_options(1);
  opt.passes = {"caa"};
  const DfmFlowReport rep = run_dfm_flow(LayoutSnapshot(std::move(m)), opt);
  EXPECT_NE(rep.trace.find("connectivity"), nullptr);
  EXPECT_NE(rep.trace.find("caa_yield"), nullptr);
  EXPECT_GT(rep.defect_yield, 0.0);
}

TEST(ReportsEquivalent, DetectsDifferences) {
  LayerMap m = small_design(6);
  const DfmFlowReport a =
      run_dfm_flow(LayoutSnapshot(LayerMap(m)), fast_options(1));
  DfmFlowReport b = run_dfm_flow(LayoutSnapshot(std::move(m)), fast_options(1));
  EXPECT_TRUE(reports_equivalent(a, b));
  b.defect_yield += 1e-9;
  EXPECT_FALSE(reports_equivalent(a, b));
}

TEST(DfmFlowSession, EmptyDeltaReusesEverything) {
  const LayerMap m = small_design(7);
  DfmFlowSession session(m, fast_options(2));
  const DfmFlowReport cold = session.report();
  const DfmFlowReport& warm = session.apply(LayoutDelta{});
  EXPECT_TRUE(reports_equivalent(cold, warm));
  for (const PassTrace& p : warm.trace.passes) {
    EXPECT_EQ(p.dirty_units, 0u) << p.name;
    EXPECT_TRUE(p.incremental) << p.name;
    if (p.total_units > 0) {
      EXPECT_DOUBLE_EQ(p.reuse_ratio(), 1.0) << p.name;
    }
  }
}

TEST(DfmFlowSession, TraceRecordsPartialDamage) {
  const LayerMap m = small_design(8);
  DfmFlowSession session(m, fast_options(1));
  const Rect inside =
      interior(Region(m.at(layers::kMetal1)).bbox(), 2000);
  LayoutDelta d;
  d.add(layers::kMetal2,
        Rect{inside.lo.x, inside.lo.y, inside.lo.x + 300, inside.lo.y + 60});
  const DfmFlowReport& rep = session.apply(d);
  const PassTrace* drc = rep.trace.find("drc_plus");
  ASSERT_NE(drc, nullptr);
  EXPECT_TRUE(drc->incremental);
  EXPECT_GT(drc->total_units, 0u);
  EXPECT_LT(drc->dirty_units, drc->total_units)
      << "an M2-only edit must not recheck every unit";
  // M1-only dpt must be spliced wholesale.
  const PassTrace* dpt = rep.trace.find("dpt");
  ASSERT_NE(dpt, nullptr);
  EXPECT_EQ(dpt->dirty_units, 0u);
}

// The tentpole property: 100 random edits, sessions at 1/2/8 threads,
// every report bit-identical across thread counts, and identical to a
// cold run over the shadow layout at checkpoints.
TEST(DfmFlowSession, HundredRandomEditsMatchColdAtEveryThreadCount) {
  const LayerMap base = small_design(11);
  LayerMap shadow = base;
  DfmFlowSession s1(base, fast_options(1));
  DfmFlowSession s2(base, fast_options(2));
  DfmFlowSession s8(base, fast_options(8));
  ASSERT_TRUE(reports_equivalent(s1.report(), s2.report()));
  ASSERT_TRUE(reports_equivalent(s1.report(), s8.report()));
  {
    const DfmFlowReport cold =
        run_dfm_flow(LayoutSnapshot(LayerMap(shadow)), fast_options(1));
    ASSERT_TRUE(reports_equivalent(s1.report(), cold));
  }

  Rng rng(20260806);
  const Rect core = interior(s1.snapshot().bbox());
  for (int i = 0; i < 100; ++i) {
    const LayoutDelta d = random_edit(rng, core);
    d.apply(shadow);
    const DfmFlowReport& r1 = s1.apply(d);
    const DfmFlowReport& r2 = s2.apply(d);
    const DfmFlowReport& r8 = s8.apply(d);
    ASSERT_TRUE(reports_equivalent(r1, r2)) << "edit " << i;
    ASSERT_TRUE(reports_equivalent(r1, r8)) << "edit " << i;
    if (i % 10 == 9) {
      const DfmFlowReport cold =
          run_dfm_flow(LayoutSnapshot(LayerMap(shadow)), fast_options(1));
      ASSERT_TRUE(reports_equivalent(r1, cold)) << "after edit " << i;
    }
  }
}

// Same property with the litho pass on: per-tile splicing must stay
// bit-identical to the cold tiled simulation. Fewer edits — every cold
// checkpoint re-simulates the whole layout.
TEST(DfmFlowSession, LithoTileSplicingMatchesCold) {
  const LayerMap base = small_design(12);
  LayerMap shadow = base;
  DfmFlowSession s1(base, fast_options(1, /*litho=*/true));
  DfmFlowSession s2(base, fast_options(2, /*litho=*/true));
  Rng rng(77);
  const Rect core = interior(s1.snapshot().bbox());
  for (int i = 0; i < 9; ++i) {
    LayoutDelta d = random_edit(rng, core);
    // Bias towards M1 so the litho pass sees real damage. The stripe
    // spans core's full height and steps across its width, wrapping so
    // it never escapes the joint bbox.
    if (i % 3 == 0) {
      d = LayoutDelta{};
      const Coord span = core.hi.x - core.lo.x - 200;
      const Coord x = core.lo.x + (i * 800) % span;
      d.add(layers::kMetal1, Rect{x, core.lo.y, x + 200, core.hi.y});
    }
    d.apply(shadow);
    const DfmFlowReport& r1 = s1.apply(d);
    const DfmFlowReport& r2 = s2.apply(d);
    ASSERT_TRUE(reports_equivalent(r1, r2)) << "edit " << i;
    if (i % 3 == 2) {
      const DfmFlowReport cold = run_dfm_flow(
          LayoutSnapshot(LayerMap(shadow)), fast_options(1, /*litho=*/true));
      ASSERT_TRUE(reports_equivalent(r1, cold)) << "after edit " << i;
    }
  }
  const PassTrace* litho = s1.report().trace.find("litho");
  ASSERT_NE(litho, nullptr);
  EXPECT_TRUE(litho->incremental);
}

// The litho fast path must survive tile splicing too: an incremental
// session running FFT convolution (prefilter and all) stays equivalent
// to a cold FFT run AND to the historical direct path after every edit —
// spliced tiles and freshly simulated ones must agree on the hotspot
// set regardless of which convolution produced them.
TEST(DfmFlowSession, FftFastPathSplicingMatchesColdAndDirect) {
  DfmFlowOptions fft = fast_options(1, /*litho=*/true);
  fft.litho_fast = LithoFastMode::kFft;
  DfmFlowOptions off = fft;
  off.litho_fast = LithoFastMode::kOff;

  const LayerMap base = small_design(21);
  LayerMap shadow = base;
  DfmFlowSession sess(base, fft);
  Rng rng(99);
  const Rect core = interior(sess.snapshot().bbox());
  for (int i = 0; i < 6; ++i) {
    LayoutDelta d = random_edit(rng, core);
    if (i % 2 == 0) {
      d = LayoutDelta{};
      const Coord span = core.hi.x - core.lo.x - 200;
      const Coord x = core.lo.x + (i * 1100) % span;
      d.add(layers::kMetal1, Rect{x, core.lo.y, x + 200, core.hi.y});
    }
    d.apply(shadow);
    const DfmFlowReport& warm = sess.apply(d);
    if (i % 2 == 1) {
      const LayoutSnapshot snap{LayerMap(shadow)};
      const DfmFlowReport cold_fft = run_dfm_flow(snap, fft);
      const DfmFlowReport cold_off = run_dfm_flow(snap, off);
      ASSERT_TRUE(reports_equivalent(warm, cold_fft)) << "after edit " << i;
      ASSERT_TRUE(reports_equivalent(warm, cold_off)) << "after edit " << i;
    }
  }
}

TEST(DfmFlowSession, BboxMovingEditFallsBackToFullRun) {
  const LayerMap base = small_design(13);
  LayerMap shadow = base;
  DfmFlowSession session(base, fast_options(2));
  LayoutDelta d;
  const Rect bb = session.snapshot().bbox();
  d.add(layers::kMetal1, Rect{bb.hi.x + 5000, bb.lo.y, bb.hi.x + 5400,
                              bb.lo.y + 2000});
  d.apply(shadow);
  const DfmFlowReport& rep = session.apply(d);
  const DfmFlowReport cold =
      run_dfm_flow(LayoutSnapshot(std::move(shadow)), fast_options(1));
  EXPECT_TRUE(reports_equivalent(rep, cold));
  const PassTrace* drc = rep.trace.find("drc_plus");
  ASSERT_NE(drc, nullptr);
  EXPECT_EQ(drc->dirty_units, drc->total_units)
      << "a bbox-moving edit must degrade to a full re-run";
}

// Concurrent delta application over one shared base: each thread derives
// its own IncrementalSnapshot and runs real passes on it. Clean layers
// share the base's lazily built derived products across threads, which
// is exactly the surface the TSan suite must exercise.
TEST(DfmFlowSession, ConcurrentDeltaApplicationIsRaceFree) {
  LayerMap m = small_design(14);
  const LayoutSnapshot base(std::move(m));
  const Rect core = interior(base.bbox());
  const Tech& t = Tech::standard();

  std::vector<std::vector<Violation>> serial(8);
  std::vector<std::vector<Violation>> threaded(8);
  Rule rule;
  rule.name = "M1.S.1";
  rule.kind = RuleKind::kMinSpacing;
  rule.layer = layers::kMetal1;
  rule.value = t.m1_space;
  const auto delta_for = [&](int i) {
    LayoutDelta d;
    const Coord x = core.lo.x + i * 600;
    d.add(layers::kMetal1, Rect{x, core.lo.y, x + 80, core.lo.y + 900});
    return d;
  };
  for (int i = 0; i < 8; ++i) {
    const IncrementalSnapshot inc(base, delta_for(i));
    serial[static_cast<std::size_t>(i)] = DrcEngine::run_rule(inc, rule);
  }
  std::vector<std::thread> workers;
  workers.reserve(8);
  for (int i = 0; i < 8; ++i) {
    workers.emplace_back([&, i] {
      const IncrementalSnapshot inc(base, delta_for(i));
      (void)inc.rtree(layers::kMetal2);   // shared slot, built once
      (void)inc.edges(layers::kMetal1);   // fresh slot per delta
      threaded[static_cast<std::size_t>(i)] = DrcEngine::run_rule(inc, rule);
    });
  }
  for (std::thread& w : workers) w.join();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(threaded[static_cast<std::size_t>(i)],
              serial[static_cast<std::size_t>(i)])
        << "delta " << i;
  }
}

}  // namespace
}  // namespace dfm
