// Out-of-core snapshot coverage: streaming readers vs full in-memory
// decode, lazy hydration, deterministic hydrate -> evict -> re-hydrate,
// and full-flow report bit-identity across memory budgets and thread
// counts.
#include "core/dfm_flow.h"
#include "core/incremental.h"
#include "core/snapshot.h"
#include "core/snapshot_shm.h"
#include "core/stream_source.h"
#include "gdsii/gds_stream.h"
#include "gdsii/gdsii.h"
#include "oasis/oas_stream.h"
#include "oasis/oasis.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dfm {
namespace {

Library make_design(unsigned seed = 7) {
  DesignParams p;
  p.seed = seed;
  p.rows = 2;
  p.cells_per_row = 4;
  p.routes = 6;
  return generate_design(p);
}

std::string gds_bytes(const Library& lib) {
  std::stringstream ss;
  write_gdsii(lib, ss);
  return ss.str();
}

std::string oas_bytes(const Library& lib) {
  std::stringstream ss;
  write_oasis(lib, ss);
  return ss.str();
}

// A temp file that cleans up after itself (the mmap path needs real
// files).
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name, const std::string& bytes)
      : path(::testing::TempDir() + name) {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(GdsStream, FullLayerMatchesInMemoryFlatten) {
  const Library lib = make_design();
  const std::string bytes = gds_bytes(lib);
  const GdsStreamReader reader = GdsStreamReader::from_bytes(bytes);

  const std::uint32_t top_mem = lib.top_cells().front();
  const std::uint32_t top_stream = reader.top_cell();
  for (const LayerKey k : lib.layers()) {
    Region eager = lib.flatten(top_mem, k);
    Region streamed = reader.read_layer(top_stream, k);
    EXPECT_EQ(eager, streamed) << "layer " << to_string(k);
    EXPECT_EQ(eager.bbox(), reader.layer_bbox(top_stream, k))
        << "bbox of layer " << to_string(k);
  }
}

TEST(GdsStream, WindowsMatchInMemoryWindowFlatten) {
  const Library lib = make_design();
  const std::string bytes = gds_bytes(lib);
  const GdsStreamReader reader = GdsStreamReader::from_bytes(bytes);

  const std::uint32_t top_mem = lib.top_cells().front();
  const std::uint32_t top_stream = reader.top_cell();
  const Rect full = lib.bbox(top_mem);
  ASSERT_FALSE(full.is_empty());
  // A 3x3 grid of windows plus a window hanging off the layout edge.
  const Coord w3 = (full.hi.x - full.lo.x) / 3;
  const Coord h3 = (full.hi.y - full.lo.y) / 3;
  std::vector<Rect> windows;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      windows.push_back(Rect{full.lo.x + i * w3, full.lo.y + j * h3,
                             full.lo.x + (i + 1) * w3,
                             full.lo.y + (j + 1) * h3});
    }
  }
  windows.push_back(Rect{full.hi.x - w3 / 2, full.hi.y - h3 / 2,
                         full.hi.x + w3, full.hi.y + h3});
  for (const LayerKey k : lib.layers()) {
    for (const Rect& win : windows) {
      EXPECT_EQ(lib.flatten_window(top_mem, k, win),
                reader.read_layer_window(top_stream, k, win))
          << "layer " << to_string(k);
    }
  }
}

TEST(GdsStream, UnionOfTileHydrationsEqualsEagerFlatten) {
  // The exact identity the lazily-hydrated snapshot depends on: the union
  // of per-tile window reads, re-normalized, is canonically equal to the
  // eager whole-layer flatten.
  const Library lib = make_design();
  const GdsStreamReader reader = GdsStreamReader::from_bytes(gds_bytes(lib));
  const std::uint32_t top_mem = lib.top_cells().front();
  const std::uint32_t top_stream = reader.top_cell();
  const Rect full = lib.bbox(top_mem);
  const Coord tile = (full.hi.x - full.lo.x) / 4 + 1;
  for (const LayerKey k : lib.layers()) {
    Region acc;
    for (Coord y = full.lo.y; y < full.hi.y; y += tile) {
      for (Coord x = full.lo.x; x < full.hi.x; x += tile) {
        acc.add(reader.read_layer_window(
            top_stream, k, Rect{x, y, x + tile, y + tile}));
      }
    }
    EXPECT_EQ(lib.flatten(top_mem, k), acc) << "layer " << to_string(k);
  }
}

TEST(GdsStream, MmapPathMatchesFromBytes) {
  const Library lib = make_design();
  const std::string bytes = gds_bytes(lib);
  const TempFile f("outofcore_stream.gds", bytes);
  const GdsStreamReader mapped(f.path);
  const GdsStreamReader in_mem = GdsStreamReader::from_bytes(bytes);
  ASSERT_EQ(mapped.index().cell_count(), in_mem.index().cell_count());
  const std::uint32_t top = mapped.top_cell();
  EXPECT_EQ(top, in_mem.top_cell());
  for (const LayerKey k : mapped.layers()) {
    EXPECT_EQ(mapped.read_layer(top, k), in_mem.read_layer(top, k));
  }
}

TEST(GdsStream, ReadLibraryMatchesIstreamReader) {
  const Library lib = make_design();
  const std::string bytes = gds_bytes(lib);
  std::stringstream ss(bytes);
  const Library via_stream = read_gdsii(ss);
  const Library via_index = GdsStreamReader::from_bytes(bytes).read_library();
  ASSERT_EQ(via_stream.cell_count(), via_index.cell_count());
  const std::uint32_t top = via_stream.top_cells().front();
  for (const LayerKey k : via_stream.layers()) {
    EXPECT_EQ(via_stream.flatten(top, k), via_index.flatten(top, k));
  }
}

TEST(OasStream, FullLayerMatchesInMemoryFlatten) {
  const Library lib = make_design(11);
  const std::string bytes = oas_bytes(lib);
  const OasStreamReader reader = OasStreamReader::from_bytes(bytes);
  const std::uint32_t top_mem = lib.top_cells().front();
  const std::uint32_t top_stream = reader.top_cell();
  for (const LayerKey k : lib.layers()) {
    EXPECT_EQ(lib.flatten(top_mem, k), reader.read_layer(top_stream, k))
        << "layer " << to_string(k);
    EXPECT_EQ(lib.flatten(top_mem, k).bbox(),
              reader.layer_bbox(top_stream, k))
        << "bbox of layer " << to_string(k);
  }
}

TEST(OasStream, WindowsMatchInMemoryWindowFlatten) {
  const Library lib = make_design(11);
  const OasStreamReader reader = OasStreamReader::from_bytes(oas_bytes(lib));
  const std::uint32_t top_mem = lib.top_cells().front();
  const std::uint32_t top_stream = reader.top_cell();
  const Rect full = lib.bbox(top_mem);
  const Coord w2 = (full.hi.x - full.lo.x) / 2;
  const Coord h2 = (full.hi.y - full.lo.y) / 2;
  for (const LayerKey k : lib.layers()) {
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) {
        const Rect win{full.lo.x + i * w2, full.lo.y + j * h2,
                       full.lo.x + (i + 1) * w2, full.lo.y + (j + 1) * h2};
        EXPECT_EQ(lib.flatten_window(top_mem, k, win),
                  reader.read_layer_window(top_stream, k, win))
            << "layer " << to_string(k);
      }
    }
  }
}

TEST(OasStream, MmapPathMatchesFromBytes) {
  const Library lib = make_design(11);
  const std::string bytes = oas_bytes(lib);
  const TempFile f("outofcore_stream.oas", bytes);
  const OasStreamReader mapped(f.path);
  const OasStreamReader in_mem = OasStreamReader::from_bytes(bytes);
  const std::uint32_t top = mapped.top_cell();
  for (const LayerKey k : mapped.layers()) {
    EXPECT_EQ(mapped.read_layer(top, k), in_mem.read_layer(top, k));
  }
}

TEST(OasStream, ReadLibraryMatchesIstreamReader) {
  const Library lib = make_design(11);
  const std::string bytes = oas_bytes(lib);
  std::stringstream ss(bytes);
  const Library via_stream = read_oasis(ss);
  const Library via_index = OasStreamReader::from_bytes(bytes).read_library();
  ASSERT_EQ(via_stream.cell_count(), via_index.cell_count());
  const std::uint32_t top = via_stream.top_cells().front();
  for (const LayerKey k : via_stream.layers()) {
    EXPECT_EQ(via_stream.flatten(top, k), via_index.flatten(top, k));
  }
}

std::shared_ptr<const SnapshotSource> gds_source(const Library& lib) {
  return std::make_shared<GdsStreamSource>(
      GdsStreamReader::from_bytes(gds_bytes(lib)));
}

TEST(LazySnapshot, MatchesEagerSnapshot) {
  const Library lib = make_design();
  const std::uint32_t top = lib.top_cells().front();
  const LayoutSnapshot eager(lib, top);
  const LayoutSnapshot lazy(gds_source(lib),
                            LayoutSnapshot::standard_flow_layers());

  EXPECT_EQ(eager.bbox(), lazy.bbox());
  ASSERT_EQ(eager.layer_keys(), lazy.layer_keys());
  for (const LayerKey k : eager.layer_keys()) {
    EXPECT_EQ(eager.layer(k).region(), lazy.layer(k).region())
        << "layer " << to_string(k);
    EXPECT_EQ(eager.rtree(k).size(), lazy.rtree(k).size());
    EXPECT_EQ(eager.edges(k).size(), lazy.edges(k).size());
    EXPECT_EQ(eager.density(k, 5000).values, lazy.density(k, 5000).values);
  }
  // Same access pattern => identical cache accounting, lazy or not.
  EXPECT_EQ(eager.cache_stats().builds(), lazy.cache_stats().builds());
  EXPECT_EQ(eager.cache_stats().reads(), lazy.cache_stats().reads());
}

TEST(LazySnapshot, NothingHydratedUntilTouched) {
  const Library lib = make_design();
  const LayoutSnapshot lazy(gds_source(lib),
                            LayoutSnapshot::standard_flow_layers());
  EXPECT_EQ(lazy.budget().current(), 0u);
  EXPECT_EQ(lazy.budget().hydrations(), 0u);
  EXPECT_TRUE(lazy.evictable());

  (void)lazy.layer(layers::kMetal1);
  EXPECT_EQ(lazy.budget().hydrations(), 1u);
  EXPECT_GT(lazy.budget().current(), 0u);
}

TEST(LazySnapshot, EvictRehydrateIsBitIdentical) {
  const Library lib = make_design();
  const LayoutSnapshot lazy(gds_source(lib),
                            LayoutSnapshot::standard_flow_layers());

  const std::vector<Rect> first = lazy.layer(layers::kMetal1).rects();
  const std::size_t rtree_size = lazy.rtree(layers::kMetal1).size();
  const std::size_t edge_count = lazy.edges(layers::kMetal1).size();
  const SnapshotCacheStats before = lazy.cache_stats();

  EXPECT_GT(lazy.evict_derived(layers::kMetal1), 0u);
  EXPECT_GT(lazy.evict_geometry(layers::kMetal1), 0u);
  EXPECT_GE(lazy.budget().evictions(), 2u);

  EXPECT_EQ(lazy.layer(layers::kMetal1).rects(), first);
  EXPECT_EQ(lazy.rtree(layers::kMetal1).size(), rtree_size);
  EXPECT_EQ(lazy.edges(layers::kMetal1).size(), edge_count);

  // Rebuilds count as re-hydrations, not builds: the cache stats (which
  // feed the canonical flow report) are identical to a run that never
  // evicted.
  EXPECT_EQ(lazy.cache_stats().builds(), before.builds());
  EXPECT_GE(lazy.budget().rehydrations(), 3u);
}

TEST(LazySnapshot, EvictToBudgetSparesKeepSet) {
  const Library lib = make_design();
  const LayoutSnapshot lazy(gds_source(lib),
                            LayoutSnapshot::standard_flow_layers());
  for (const LayerKey k : lazy.layer_keys()) {
    (void)lazy.layer(k);
    (void)lazy.rtree(k);
  }
  const std::size_t hydrated = lazy.budget().current();
  ASSERT_GT(hydrated, 0u);

  // A pathological 1-byte budget: everything evictable must go, but the
  // keep set's geometry survives.
  lazy.budget().set_limit(1);
  const std::size_t m1_bytes =
      lazy.layer(layers::kMetal1).rects().size() * sizeof(Rect);
  const std::size_t freed = lazy.evict_to_budget({layers::kMetal1});
  EXPECT_EQ(lazy.budget().current(), m1_bytes);
  EXPECT_EQ(freed, hydrated - m1_bytes);

  // Everything still reads back identically afterwards.
  const LayoutSnapshot eager(lib, lib.top_cells().front());
  for (const LayerKey k : eager.layer_keys()) {
    EXPECT_EQ(eager.layer(k).region(), lazy.layer(k).region())
        << "layer " << to_string(k);
  }
}

TEST(LazySnapshot, EagerSnapshotStillAccountsBytes) {
  const Library lib = make_design();
  const LayoutSnapshot eager(lib, lib.top_cells().front());
  EXPECT_FALSE(eager.evictable());
  EXPECT_GT(eager.budget().current(), 0u);
  EXPECT_EQ(eager.budget().peak(), eager.budget().current());
  // Geometry of an eager snapshot cannot be dropped.
  EXPECT_EQ(eager.evict_geometry(layers::kMetal1), 0u);
}

DfmFlowOptions flow_options(unsigned threads, std::size_t budget) {
  DfmFlowOptions opt;
  opt.tech = Tech::standard();
  opt.model.sigma = 25;
  opt.model.px = 5;
  opt.threads = threads;
  opt.memory_budget = budget;
  return opt;
}

// The tentpole guarantee: the canonical flow report is byte-identical at
// every memory budget (unlimited / tight / pathological) and thread
// count, on both the in-memory and the streaming path.
TEST(OutOfCoreFlow, ReportBitIdenticalAcrossBudgetsAndThreads) {
  const Library lib = make_design();
  const std::uint32_t top = lib.top_cells().front();

  const DfmFlowReport baseline = run_dfm_flow(lib, top, flow_options(1, 0));
  const std::string want = flow_report_canonical_json(baseline);

  // Tight = roughly half the fully-hydrated high-water mark; the
  // unlimited run measures it.
  const LayoutSnapshot probe(gds_source(lib),
                             LayoutSnapshot::standard_flow_layers());
  (void)run_dfm_flow(probe, flow_options(1, 0));
  const std::size_t high_water = probe.budget().peak();
  ASSERT_GT(high_water, 0u);

  for (const std::size_t budget :
       {std::size_t{0}, high_water / 2, std::size_t{1}}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      const DfmFlowReport lazy =
          run_dfm_flow(gds_source(lib), flow_options(threads, budget));
      EXPECT_EQ(want, flow_report_canonical_json(lazy))
          << "budget=" << budget << " threads=" << threads;

      const DfmFlowReport mem =
          run_dfm_flow(lib, top, flow_options(threads, budget));
      EXPECT_EQ(want, flow_report_canonical_json(mem))
          << "in-memory, budget=" << budget << " threads=" << threads;
    }
  }
}

TEST(OutOfCoreFlow, SessionEditsBitIdenticalUnderBudget) {
  const Library lib = make_design();
  const std::uint32_t top = lib.top_cells().front();
  const Rect box{1000, 1000, 1400, 1200};

  const auto run_edit = [&](unsigned threads, std::size_t budget) {
    DfmFlowSession session(lib, top, flow_options(threads, budget));
    LayoutDelta delta;
    delta.add(layers::kMetal1, box);
    return flow_report_canonical_json(session.apply(delta));
  };
  const std::string want = run_edit(1, 0);
  for (const std::size_t budget : {std::size_t{200} << 10, std::size_t{1}}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      EXPECT_EQ(want, run_edit(threads, budget))
          << "budget=" << budget << " threads=" << threads;
    }
  }
}

TEST(SnapshotShm, PublishAttachRoundTrip) {
  const Library lib = make_design();
  const std::uint32_t top = lib.top_cells().front();
  const std::string name =
      snapshot_shm_name_for("dfmkit-test", "round-trip");
  remove_snapshot_shm(name);  // stale segment from a crashed run

  const LibrarySource src(
      std::shared_ptr<const Library>(std::shared_ptr<void>{}, &lib), top);
  ASSERT_GT(publish_snapshot_shm(name, src,
                                 LayoutSnapshot::standard_flow_layers()),
            0u);
  EXPECT_TRUE(snapshot_shm_exists(name));
  // O_EXCL: publishing the same name twice must fail loudly.
  EXPECT_THROW(publish_snapshot_shm(name, src, {layers::kMetal1}),
               std::runtime_error);

  {
    const ShmSnapshotSource shm(name);
    EXPECT_EQ(shm.layer_keys(), LayoutSnapshot::standard_flow_layers());
    const Rect full = lib.bbox(top);
    for (const LayerKey k : shm.layer_keys()) {
      EXPECT_EQ(lib.flatten(top, k), shm.read_layer(k))
          << "layer " << to_string(k);
      EXPECT_EQ(lib.flatten(top, k).bbox(), shm.layer_bbox(k));
      const Rect win{full.lo.x, full.lo.y, (full.lo.x + full.hi.x) / 2,
                     (full.lo.y + full.hi.y) / 2};
      EXPECT_EQ(lib.flatten_window(top, k, win), shm.read_layer_window(k, win))
          << "window on layer " << to_string(k);
    }
  }
  EXPECT_TRUE(remove_snapshot_shm(name));
  EXPECT_FALSE(snapshot_shm_exists(name));
}

TEST(SnapshotShm, FlowOverSegmentMatchesDirect) {
  const Library lib = make_design();
  const std::uint32_t top = lib.top_cells().front();
  const std::string name = snapshot_shm_name_for("dfmkit-test", "flow");
  remove_snapshot_shm(name);

  const LibrarySource src(
      std::shared_ptr<const Library>(std::shared_ptr<void>{}, &lib), top);
  publish_snapshot_shm(name, src, LayoutSnapshot::standard_flow_layers());

  const DfmFlowReport direct = run_dfm_flow(lib, top, flow_options(1, 0));
  const DfmFlowReport shared = run_dfm_flow(
      std::make_shared<ShmSnapshotSource>(name), flow_options(8, 64 << 10));
  EXPECT_EQ(flow_report_canonical_json(direct),
            flow_report_canonical_json(shared));
  remove_snapshot_shm(name);
}

TEST(SnapshotShm, AttachRejectsGarbage) {
  EXPECT_THROW(ShmSnapshotSource("/dfmkit-test.does-not-exist"),
               std::runtime_error);
}

TEST(ParseByteSize, AcceptsHumanSizes) {
  std::size_t v = 0;
  EXPECT_TRUE(parse_byte_size("123", &v));
  EXPECT_EQ(v, 123u);
  EXPECT_TRUE(parse_byte_size("64k", &v));
  EXPECT_EQ(v, 64u << 10);
  EXPECT_TRUE(parse_byte_size("2M", &v));
  EXPECT_EQ(v, 2u << 20);
  EXPECT_TRUE(parse_byte_size("1GiB", &v));
  EXPECT_EQ(v, 1u << 30);
  EXPECT_TRUE(parse_byte_size("512kb", &v));
  EXPECT_EQ(v, 512u << 10);
  EXPECT_FALSE(parse_byte_size("", &v));
  EXPECT_FALSE(parse_byte_size("x12", &v));
  EXPECT_FALSE(parse_byte_size("12q", &v));
  EXPECT_FALSE(parse_byte_size("12kx", &v));
}

}  // namespace
}  // namespace dfm
