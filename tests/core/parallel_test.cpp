// Thread-pool unit tests plus the determinism suite: the whole point of
// the tile scheduler is that parallel output is bit-identical to serial
// output, so run_dfm_flow is executed at several thread counts and every
// field of the report is compared exactly.
#include "core/parallel.h"

#include "core/dfm_flow.h"
#include "gen/generators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dfm {
namespace {

TEST(ThreadPool, ResolvesConcurrency) {
  ThreadPool serial(1);
  EXPECT_EQ(serial.concurrency(), 1u);
  EXPECT_EQ(serial.worker_count(), 0u);
  ThreadPool four(4);
  EXPECT_EQ(four.concurrency(), 4u);
  EXPECT_EQ(four.worker_count(), 3u);
  ThreadPool targetless(0);
  EXPECT_GE(targetless.concurrency(), 1u);
}

TEST(ThreadPool, CompletesEverySubmittedTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPool, AsyncReturnsValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.async([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, AsyncPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.async([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(10000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [](std::size_t i) {
                          if (i == 137) throw std::runtime_error("index 137");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, NestedSubmissionFromTasksCompletes) {
  std::atomic<int> leaves{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&pool, &leaves] {
        for (int j = 0; j < 4; ++j) {
          pool.submit([&leaves] { leaves.fetch_add(1); });
        }
      });
    }
  }
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPool, ShutdownUnderLoadDrainsEverything) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1);
      });
    }
    // Destroy immediately while the queues are still full.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  int ran = 0;  // no atomics needed: everything runs on this thread
  pool.submit([&ran] { ++ran; });
  pool.parallel_for(10, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 11);
}

TEST(ParallelMap, PreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map(&pool, 1000, [](std::size_t i) {
    return static_cast<int>(i) * 3;
  });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(TileScheduler, RowMajorCoverage) {
  const Rect extent{0, 0, 4500, 3000};
  const auto tiles = make_tiles(extent, 2000);
  ASSERT_EQ(tiles.size(), 6u);  // 3 cols x 2 rows
  EXPECT_EQ(tiles[0], (Rect{0, 0, 2000, 2000}));
  EXPECT_EQ(tiles[2], (Rect{4000, 0, 4500, 2000}));  // clamped column
  EXPECT_EQ(tiles[5], (Rect{4000, 2000, 4500, 3000}));
  Area covered = 0;
  for (const Rect& t : tiles) covered += t.area();
  EXPECT_EQ(covered, extent.area());
  EXPECT_TRUE(make_tiles(Rect::empty(), 2000).empty());
  EXPECT_TRUE(make_tiles(extent, 0).empty());
}

// ---- Determinism suite ----------------------------------------------------

DfmFlowReport flow_at(const Library& lib, unsigned threads) {
  DfmFlowOptions opt;
  opt.tech = Tech::standard();
  opt.model.sigma = 25;
  opt.model.px = 5;
  opt.litho_tile = 4000;  // force a multi-tile scan on the small design
  opt.threads = threads;
  return run_dfm_flow(lib, lib.top_cells().front(), opt);
}

void expect_identical(const DfmFlowReport& a, const DfmFlowReport& b) {
  // Scorecard: every metric, value bit-exact.
  ASSERT_EQ(a.scorecard.metrics.size(), b.scorecard.metrics.size());
  for (std::size_t i = 0; i < a.scorecard.metrics.size(); ++i) {
    const MetricScore& ma = a.scorecard.metrics[i];
    const MetricScore& mb = b.scorecard.metrics[i];
    EXPECT_EQ(ma.name, mb.name);
    EXPECT_EQ(ma.value, mb.value) << ma.name;
    EXPECT_EQ(ma.weight, mb.weight) << ma.name;
    EXPECT_EQ(ma.detail, mb.detail) << ma.name;
  }
  EXPECT_EQ(a.scorecard.composite(), b.scorecard.composite());

  // Hotspot list: same spots in the same order.
  ASSERT_EQ(a.hotspots.size(), b.hotspots.size());
  for (std::size_t i = 0; i < a.hotspots.size(); ++i) {
    EXPECT_EQ(a.hotspots[i].kind, b.hotspots[i].kind);
    EXPECT_EQ(a.hotspots[i].marker, b.hotspots[i].marker);
    EXPECT_EQ(a.hotspots[i].severity, b.hotspots[i].severity);
  }

  // DRC+ violations and pattern matches.
  const auto& va = a.drcplus.drc.violations;
  const auto& vb = b.drcplus.drc.violations;
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i].rule, vb[i].rule);
    EXPECT_EQ(va[i].marker, vb[i].marker);
    EXPECT_EQ(va[i].measured, vb[i].measured);
  }
  ASSERT_EQ(a.drcplus.matches.size(), b.drcplus.matches.size());
  for (std::size_t s = 0; s < a.drcplus.matches.size(); ++s) {
    const auto& sa = a.drcplus.matches[s];
    const auto& sb = b.drcplus.matches[s];
    ASSERT_EQ(sa.size(), sb.size()) << "pattern set " << s;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].rule_index, sb[i].rule_index);
      EXPECT_EQ(sa[i].window, sb[i].window);
      EXPECT_EQ(sa[i].anchor, sb[i].anchor);
      EXPECT_EQ(sa[i].exact, sb[i].exact);
    }
  }

  // The rest of the report.
  EXPECT_EQ(a.nets.size(), b.nets.size());
  ASSERT_EQ(a.floating_cuts.size(), b.floating_cuts.size());
  EXPECT_EQ(a.recommended.compliance(), b.recommended.compliance());
  EXPECT_EQ(a.vias.singles_before, b.vias.singles_before);
  EXPECT_EQ(a.vias.inserted, b.vias.inserted);
  EXPECT_EQ(a.lambda_shorts, b.lambda_shorts);
  EXPECT_EQ(a.lambda_opens, b.lambda_opens);
  EXPECT_EQ(a.defect_yield, b.defect_yield);
  EXPECT_EQ(a.via_yield_before, b.via_yield_before);
  EXPECT_EQ(a.via_yield_after, b.via_yield_after);
  EXPECT_EQ(a.dpt.compliant, b.dpt.compliant);
}

class FlowDeterminism : public ::testing::TestWithParam<unsigned> {};

TEST_P(FlowDeterminism, ParallelFlowEqualsSerialFlow) {
  DesignParams p;
  p.seed = 40 + GetParam();
  p.rows = 2;
  p.cells_per_row = 6;
  p.routes = 12;
  const Library lib = generate_design(p);

  const DfmFlowReport serial = flow_at(lib, 1);
  for (const unsigned threads : {2u, 8u}) {
    const DfmFlowReport par = flow_at(lib, threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(serial, par);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowDeterminism, ::testing::Range(1u, 4u));

TEST(Determinism, TiledHotspotScanMatchesSerialAcrossThreadCounts) {
  DesignParams p;
  p.seed = 77;
  p.rows = 2;
  p.cells_per_row = 8;
  p.routes = 16;
  const Library lib = generate_design(p);
  const Region m1 = lib.flatten(lib.top_cells().front(), layers::kMetal1);
  OpticalModel model;
  model.sigma = 25;
  model.px = 5;

  const auto serial = simulate_hotspots(m1, m1.bbox(), model, 12, 3000);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const auto par = simulate_hotspots(m1, m1.bbox(), model, 12, 3000, &pool);
    ASSERT_EQ(par.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < par.size(); ++i) {
      EXPECT_EQ(par[i].kind, serial[i].kind);
      EXPECT_EQ(par[i].marker, serial[i].marker);
      EXPECT_EQ(par[i].severity, serial[i].severity);
    }
  }
}

}  // namespace
}  // namespace dfm
