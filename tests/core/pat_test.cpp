#include "core/pat.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

// A layer where small context is ambiguous: the "core" construct (a pair
// of bars 60 apart) appears both as a hotspot (with a third bar above,
// at hot sites) and as harmless wiring (no third bar, at clean sites).
struct Scene {
  Region layer;
  std::vector<Point> hot;
  std::vector<Point> clean;
};

Scene ambiguous_scene() {
  Scene s;
  auto add_core = [&s](Point at) {
    s.layer.add(Rect{at.x - 100, at.y - 80, at.x + 100, at.y - 20});
    s.layer.add(Rect{at.x - 100, at.y + 20, at.x + 100, at.y + 80});
  };
  // Hot sites: core + disambiguating neighbour at |y| ~ 150 (outside a
  // 100-radius window, inside a 200-radius one).
  for (int i = 0; i < 3; ++i) {
    const Point at{i * 3000, 0};
    add_core(at);
    s.layer.add(Rect{at.x - 100, at.y + 120, at.x + 100, at.y + 180});
    s.hot.push_back(at);
  }
  // Clean sites: bare core.
  for (int i = 0; i < 3; ++i) {
    const Point at{i * 3000, 20000};
    add_core(at);
    s.clean.push_back(at);
  }
  return s;
}

TEST(Pat, PicksTheSmallestDisambiguatingRadius) {
  const Scene s = ambiguous_scene();
  PatParams params;
  params.radii = {100, 200, 400};
  const auto optimized =
      optimize_context(s.layer, s.hot, s.clean, params);
  ASSERT_EQ(optimized.size(), 1u) << "identical hotspots share one rule";
  EXPECT_EQ(optimized[0].radius, 200) << "100 is ambiguous, 400 wasteful";
  EXPECT_DOUBLE_EQ(optimized[0].precision, 1.0);
  EXPECT_EQ(optimized[0].true_positives, 3);
  EXPECT_EQ(optimized[0].false_positives, 0);
}

TEST(Pat, SmallRadiusIsAmbiguousByConstruction) {
  // Sanity-check the fixture: at radius 100 the hot pattern also appears
  // at every clean site.
  const Scene s = ambiguous_scene();
  PatParams params;
  params.radii = {100};
  params.min_precision = 1.0;
  const auto optimized = optimize_context(s.layer, s.hot, s.clean, params);
  ASSERT_EQ(optimized.size(), 1u);
  EXPECT_LT(optimized[0].precision, 1.0);
  EXPECT_EQ(optimized[0].false_positives, 3);
}

TEST(Pat, UniquePatternKeepsSmallestRadius) {
  // A hotspot construct with nothing similar anywhere: radius 100 works.
  Scene s;
  s.layer.add(Rect{-80, -80, 80, 80});
  s.hot.push_back({0, 0});
  for (int i = 0; i < 3; ++i) {
    s.layer.add(Rect{i * 2000 + 5000, 0, i * 2000 + 5400, 60});
    s.clean.push_back({i * 2000 + 5200, 30});
  }
  PatParams params;
  params.radii = {100, 200, 400};
  const auto optimized = optimize_context(s.layer, s.hot, s.clean, params);
  ASSERT_EQ(optimized.size(), 1u);
  EXPECT_EQ(optimized[0].radius, 100);
  EXPECT_DOUBLE_EQ(optimized[0].precision, 1.0);
}

TEST(Pat, DistinctHotspotFamiliesGetOwnRules) {
  Scene s;
  // Family 1: squares. Family 2: bars. Both twice.
  for (int i = 0; i < 2; ++i) {
    const Point a{i * 4000, 0};
    s.layer.add(Rect{a.x - 70, a.y - 70, a.x + 70, a.y + 70});
    s.hot.push_back(a);
    const Point b{i * 4000, 10000};
    s.layer.add(Rect{b.x - 90, b.y - 30, b.x + 90, b.y + 30});
    s.hot.push_back(b);
  }
  PatParams params;
  params.radii = {150, 300};
  const auto optimized = optimize_context(s.layer, s.hot, s.clean, params);
  EXPECT_EQ(optimized.size(), 2u);
}

TEST(Pat, NoHotspotsNoRules) {
  Scene s;
  s.layer.add(Rect{0, 0, 100, 100});
  EXPECT_TRUE(optimize_context(s.layer, {}, {{50, 50}}, {}).empty());
}

}  // namespace
}  // namespace dfm
