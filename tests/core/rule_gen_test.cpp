#include "core/rule_gen.h"

#include "core/snapshot.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

RuleGenParams params() {
  RuleGenParams p;
  p.model.sigma = 30;
  p.model.px = 5;
  p.window = 400;
  p.stride = 200;
  return p;
}

TEST(RuleGen, GradesBadClassesWorseThanGood) {
  const Tech& t = Tech::standard();
  Cell c{"mix"};
  // Bad content: a sub-resolution ladder (prints badly at sigma 30).
  for (int i = 0; i < 6; ++i) {
    c.add(layers::kMetal1, Rect{i * 100, 0, i * 100 + 40, 2000});
  }
  // Good content: fat well-spaced wires.
  for (int i = 0; i < 6; ++i) {
    c.add(layers::kMetal1, Rect{5000 + i * 500, 0, 5000 + i * 500 + 250, 2000});
  }
  (void)t;
  const Region layer = c.local_region(layers::kMetal1);
  const auto graded =
      grade_pattern_classes(layer, layer.bbox().expanded(100), params());
  ASSERT_GE(graded.size(), 2u);
  // Worst-first ordering with genuinely bad content at the top.
  EXPECT_GT(graded.front().severity, 0.0);
  EXPECT_GE(graded.front().severity, graded.back().severity);
  // The fat-wire classes grade clean.
  bool some_clean = false;
  for (const auto& g : graded) {
    if (g.severity == 0.0) some_clean = true;
  }
  EXPECT_TRUE(some_clean);
}

TEST(RuleGen, EmitsOnlyBadClassesAsRules) {
  Cell c{"mix"};
  for (int i = 0; i < 6; ++i) {
    c.add(layers::kMetal1, Rect{i * 100, 0, i * 100 + 40, 2000});
    c.add(layers::kMetal1, Rect{5000 + i * 500, 0, 5000 + i * 500 + 250, 2000});
  }
  const Region layer = c.local_region(layers::kMetal1);
  const auto rules =
      generate_drcplus_rules(layer, layer.bbox().expanded(100), params());
  ASSERT_FALSE(rules.empty());
  for (const auto& r : rules) {
    EXPECT_EQ(r.name.rfind("DFMGEN.", 0), 0u);
    EXPECT_FALSE(r.pattern.empty());
  }

  // The generated deck re-finds the bad construct via grid matching.
  const PatternMatcher matcher{rules};
  LayerMap layers;
  layers.emplace(layers::kMetal1, layer);
  const LayoutSnapshot snap(std::move(layers));
  const auto windows = capture_grid(snap, {layers::kMetal1},
                                    layer.bbox().expanded(100), 400, 200);
  const auto matches = matcher.scan(windows);
  EXPECT_FALSE(matches.empty());
  // Matches concentrate on the ladder side (x < 5000).
  for (const auto& m : matches) {
    EXPECT_LT(m.window.lo.x, 5000);
  }
}

TEST(RuleGen, CleanLayoutYieldsNoRules) {
  Cell c{"clean"};
  for (int i = 0; i < 5; ++i) {
    c.add(layers::kMetal1, Rect{i * 600, 0, i * 600 + 300, 3000});
  }
  const Region layer = c.local_region(layers::kMetal1);
  const auto rules =
      generate_drcplus_rules(layer, layer.bbox().expanded(100), params());
  EXPECT_TRUE(rules.empty());
}

TEST(RuleGen, RespectsMaxRules) {
  Cell c{"many"};
  // Many distinct bad patterns: ladders at varying pitches.
  for (int k = 0; k < 8; ++k) {
    for (int i = 0; i < 4; ++i) {
      const Coord x0 = k * 3000 + i * (80 + 5 * k);
      c.add(layers::kMetal1, Rect{x0, 0, x0 + 35 + k, 1500});
    }
  }
  const Region layer = c.local_region(layers::kMetal1);
  RuleGenParams p = params();
  p.max_rules = 3;
  const auto rules =
      generate_drcplus_rules(layer, layer.bbox().expanded(100), p);
  EXPECT_LE(rules.size(), 3u);
}

}  // namespace
}  // namespace dfm
