// LayoutSnapshot: the shared analysis substrate. The contract under test:
// (a) layers are normalized by construction and identical to a fresh
// flatten, (b) every memoized derived product is bit-identical to the
// same computation done from scratch, (c) concurrent first access from
// many threads is race-free and returns one shared object, with exact
// cache accounting, and (d) the flow run over a snapshot reproduces the
// Library-path flow field for field.
#include "core/snapshot.h"

#include "core/dfm_flow.h"
#include "core/parallel.h"
#include "gen/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dfm {
namespace {

Library small_design(std::uint64_t seed) {
  DesignParams p;
  p.seed = seed;
  p.rows = 2;
  p.cells_per_row = 6;
  p.routes = 12;
  return generate_design(p);
}

TEST(LayoutSnapshot, LayersMatchFreshFlattenAndAreNormalized) {
  const Library lib = small_design(501);
  const auto top = lib.top_cells().front();
  const LayoutSnapshot snap(lib, top);

  // keys_ is recorded in layer-map (sorted) order; compare as a set.
  std::vector<LayerKey> expected = LayoutSnapshot::standard_flow_layers();
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(snap.layer_keys(), expected);
  Rect joined = Rect::empty();
  for (const LayerKey k : snap.layer_keys()) {
    ASSERT_TRUE(snap.has(k)) << to_string(k);
    const Region fresh = lib.flatten(top, k);
    EXPECT_TRUE(snap.layer(k).region() == fresh) << to_string(k);
    // Canonical form: identical rect lists, not just equal coverage.
    EXPECT_EQ(snap.layer(k).rects(), fresh.rects()) << to_string(k);
    joined = joined.join(snap.layer(k).bbox());
  }
  EXPECT_EQ(snap.bbox(), joined);
}

TEST(LayoutSnapshot, AbsentLayerIsEmptyViewAndDerivedAccessThrows) {
  const Library lib = small_design(502);
  const LayoutSnapshot snap(lib, lib.top_cells().front(),
                            {layers::kMetal1});
  EXPECT_FALSE(snap.has(layers::kMetal2));
  EXPECT_TRUE(snap.layer(layers::kMetal2).empty());
  EXPECT_THROW(snap.rtree(layers::kMetal2), std::out_of_range);
  EXPECT_THROW(snap.edges(layers::kMetal2), std::out_of_range);
  EXPECT_THROW(snap.density(layers::kMetal2, 2000), std::out_of_range);
}

TEST(LayoutSnapshot, DerivedProductsAreBitIdenticalToFreshComputation) {
  const Library lib = small_design(503);
  const auto top = lib.top_cells().front();
  const LayoutSnapshot snap(lib, top);

  for (const LayerKey k : snap.layer_keys()) {
    SCOPED_TRACE(to_string(k));
    const Region& layer = snap.layer(k);

    // R-tree: same query answers as a tree built from scratch.
    const RTree fresh_tree(layer.rects());
    const RTree& memo_tree = snap.rtree(k);
    ASSERT_EQ(memo_tree.size(), fresh_tree.size());
    const Rect chip = snap.bbox();
    const std::vector<Rect> windows = {
        chip, Rect{chip.lo.x, chip.lo.y, chip.lo.x + 3000, chip.lo.y + 3000},
        Rect{(chip.lo.x + chip.hi.x) / 2, (chip.lo.y + chip.hi.y) / 2,
             chip.hi.x, chip.hi.y},
        Rect{chip.hi.x + 100, chip.hi.y + 100, chip.hi.x + 200,
             chip.hi.y + 200}};
    for (const Rect& w : windows) {
      EXPECT_EQ(memo_tree.query(w), fresh_tree.query(w));
    }

    // Boundary edges: identical list, same order.
    const auto fresh_edges = boundary_edges(layer);
    const auto& memo_edges = snap.edges(k);
    ASSERT_EQ(memo_edges.size(), fresh_edges.size());
    for (std::size_t i = 0; i < memo_edges.size(); ++i) {
      EXPECT_EQ(memo_edges[i].seg, fresh_edges[i].seg);
      EXPECT_EQ(memo_edges[i].inside, fresh_edges[i].inside);
    }

    // Density grid: identical values over the snapshot bbox.
    for (const Coord tile : {2000, 5000}) {
      const DensityMap fresh_map = density_map(layer, snap.bbox(), tile);
      const DensityMap& memo_map = snap.density(k, tile);
      EXPECT_EQ(memo_map.window, fresh_map.window);
      EXPECT_EQ(memo_map.nx, fresh_map.nx);
      EXPECT_EQ(memo_map.ny, fresh_map.ny);
      EXPECT_EQ(memo_map.values, fresh_map.values);
    }
  }
}

TEST(LayoutSnapshot, CacheStatsCountEveryReadAndBuildOnce) {
  const Library lib = small_design(504);
  const LayoutSnapshot snap(lib, lib.top_cells().front(),
                            {layers::kMetal1, layers::kMetal2});
  EXPECT_EQ(snap.cache_stats().reads(), 0u);
  EXPECT_EQ(snap.cache_stats().builds(), 0u);

  snap.rtree(layers::kMetal1);
  snap.rtree(layers::kMetal1);
  snap.rtree(layers::kMetal2);
  snap.edges(layers::kMetal1);
  snap.edges(layers::kMetal1);
  snap.density(layers::kMetal1, 2000);
  snap.density(layers::kMetal1, 2000);  // hit: same (layer, tile)
  snap.density(layers::kMetal1, 4000);  // miss: new tile size

  const SnapshotCacheStats s = snap.cache_stats();
  EXPECT_EQ(s.rtree_reads, 3u);
  EXPECT_EQ(s.rtree_builds, 2u);
  EXPECT_EQ(s.edge_reads, 2u);
  EXPECT_EQ(s.edge_builds, 1u);
  EXPECT_EQ(s.density_reads, 3u);
  EXPECT_EQ(s.density_builds, 2u);
  EXPECT_EQ(s.hits(), s.reads() - s.builds());
}

TEST(LayoutSnapshot, ConcurrentFirstAccessYieldsOneSharedObject) {
  const Library lib = small_design(505);
  const LayoutSnapshot snap(lib, lib.top_cells().front());
  const LayerKey k = layers::kMetal1;

  constexpr int kThreads = 8;
  std::vector<const RTree*> trees(kThreads, nullptr);
  std::vector<const std::vector<BoundaryEdge>*> edges(kThreads, nullptr);
  std::vector<const DensityMap*> grids(kThreads, nullptr);
  {
    std::vector<std::thread> pack;
    pack.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      pack.emplace_back([&, i] {
        trees[static_cast<std::size_t>(i)] = &snap.rtree(k);
        edges[static_cast<std::size_t>(i)] = &snap.edges(k);
        grids[static_cast<std::size_t>(i)] = &snap.density(k, 3000);
      });
    }
    for (std::thread& t : pack) t.join();
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(trees[static_cast<std::size_t>(i)], trees[0]);
    EXPECT_EQ(edges[static_cast<std::size_t>(i)], edges[0]);
    EXPECT_EQ(grids[static_cast<std::size_t>(i)], grids[0]);
  }

  // Exactly one build per product no matter how many racers.
  const SnapshotCacheStats s = snap.cache_stats();
  EXPECT_EQ(s.rtree_builds, 1u);
  EXPECT_EQ(s.edge_builds, 1u);
  EXPECT_EQ(s.density_builds, 1u);
  EXPECT_EQ(s.rtree_reads, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(s.edge_reads, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(s.density_reads, static_cast<std::uint64_t>(kThreads));
}

TEST(LayoutSnapshot, LayerMapConstructorsMatchLibraryConstructor) {
  const Library lib = small_design(506);
  const auto top = lib.top_cells().front();
  LayerMap copy;
  for (const LayerKey k : LayoutSnapshot::standard_flow_layers()) {
    copy.emplace(k, lib.flatten(top, k));
  }
  const LayoutSnapshot from_lib(lib, top);
  const LayoutSnapshot from_copy(copy);
  const LayoutSnapshot from_move(std::move(copy));
  EXPECT_EQ(from_copy.bbox(), from_lib.bbox());
  EXPECT_EQ(from_move.bbox(), from_lib.bbox());
  for (const LayerKey k : from_lib.layer_keys()) {
    EXPECT_TRUE(from_copy.layer(k).region() == from_lib.layer(k).region());
    EXPECT_TRUE(from_move.layer(k).region() == from_lib.layer(k).region());
  }
}

// ---- Flow over a snapshot -------------------------------------------------

DfmFlowOptions flow_options(unsigned threads) {
  DfmFlowOptions opt;
  opt.tech = Tech::standard();
  opt.model.sigma = 25;
  opt.model.px = 5;
  opt.litho_tile = 4000;
  opt.threads = threads;
  return opt;
}

void expect_same_report(const DfmFlowReport& a, const DfmFlowReport& b) {
  ASSERT_EQ(a.scorecard.metrics.size(), b.scorecard.metrics.size());
  for (std::size_t i = 0; i < a.scorecard.metrics.size(); ++i) {
    EXPECT_EQ(a.scorecard.metrics[i].name, b.scorecard.metrics[i].name);
    EXPECT_EQ(a.scorecard.metrics[i].value, b.scorecard.metrics[i].value)
        << a.scorecard.metrics[i].name;
    EXPECT_EQ(a.scorecard.metrics[i].detail, b.scorecard.metrics[i].detail)
        << a.scorecard.metrics[i].name;
  }
  EXPECT_EQ(a.scorecard.composite(), b.scorecard.composite());
  EXPECT_EQ(a.drcplus.drc.violations.size(), b.drcplus.drc.violations.size());
  EXPECT_EQ(a.drcplus.pattern_match_count(), b.drcplus.pattern_match_count());
  EXPECT_EQ(a.hotspots.size(), b.hotspots.size());
  EXPECT_EQ(a.nets.size(), b.nets.size());
  EXPECT_EQ(a.floating_cuts.size(), b.floating_cuts.size());
  EXPECT_EQ(a.lambda_shorts, b.lambda_shorts);
  EXPECT_EQ(a.lambda_opens, b.lambda_opens);
  EXPECT_EQ(a.defect_yield, b.defect_yield);
  EXPECT_EQ(a.via_yield_before, b.via_yield_before);
  EXPECT_EQ(a.via_yield_after, b.via_yield_after);
}

TEST(FlowOverSnapshot, MatchesLibraryPathAtEveryThreadCount) {
  const Library lib = small_design(507);
  const auto top = lib.top_cells().front();
  const DfmFlowReport via_lib = run_dfm_flow(lib, top, flow_options(1));
  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const LayoutSnapshot snap(lib, top, &pool);
    const DfmFlowReport via_snap = run_dfm_flow(snap, flow_options(threads));
    expect_same_report(via_lib, via_snap);
  }
}

TEST(FlowTraceTest, AccountsForEveryPassAndCacheActivity) {
  const Library lib = small_design(508);
  const DfmFlowReport rep =
      run_dfm_flow(lib, lib.top_cells().front(), flow_options(2));
  const FlowTrace& trace = rep.trace;

  ASSERT_FALSE(trace.passes.empty());
  for (const char* name : {"snapshot", "drc_plus", "recommended", "dpt",
                           "via_doubling", "connectivity", "caa_yield"}) {
    EXPECT_NE(trace.find(name), nullptr) << name;
  }
  EXPECT_GT(trace.total_ms, 0.0);
  // Passes nest inside the total; allow scheduling jitter headroom.
  EXPECT_LE(trace.passes_ms(), trace.total_ms * 1.10);

  // The shared substrate paid off: more reads than builds. Skip the
  // hits check under a budget (DFMKIT_SNAPSHOT_BUDGET, e.g. the CI
  // memory-budget job): a budgeted flow captures patterns through the
  // streamed window path and never re-reads a derived product, so zero
  // hits is the expected accounting there, not a caching break.
  EXPECT_GT(trace.cache.builds(), 0u);
  if (resolved_memory_budget(flow_options(2)) == 0) {
    EXPECT_GT(trace.cache.hits(), 0u);
  }
  EXPECT_EQ(trace.cache.reads(), trace.cache.hits() + trace.cache.builds());

  // The JSON emitter covers every pass and stays parseable-by-eye.
  const std::string json = flow_trace_json(rep);
  EXPECT_NE(json.find("\"total_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"drc_plus\""), std::string::npos);
  EXPECT_NE(json.find("\"scorecard\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
}

}  // namespace
}  // namespace dfm
