// The telemetry subsystem's contracts: span nesting stays consistent
// under multi-thread contention (with a concurrent drain — the TSan
// target), the Chrome-trace exporter's output is byte-stable, rings drop
// (and count) instead of wrapping, histograms clamp into their edge
// buckets, and — the one that matters for sign-off — recording never
// changes the flow's answer.
#include "core/telemetry.h"

#include "core/dfm_flow.h"
#include "gen/generators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace dfm {
namespace {

namespace telem = ::dfm::telemetry;

/// Every test leaves the registry the way it found it: recording off,
/// rings empty, default capacity.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telem::set_enabled(false);
    telem::clear();
    telem::reset_metrics();
  }
  void TearDown() override {
    telem::set_enabled(false);
    telem::set_ring_capacity(std::size_t{1} << 16);
    telem::clear();
    telem::reset_metrics();
  }
};

constexpr const char* kDepthName[] = {"nest/d0", "nest/d1", "nest/d2",
                                      "nest/d3"};

void nested_spans(int depth) {
  if (depth >= 4) return;
  telem::Span s(kDepthName[depth]);
  nested_spans(depth + 1);
}

TEST_F(TelemetryTest, SpanNestingUnderContention) {
  if (!telem::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telem::set_enabled(true);

  // 8 recording threads, each running the same 4-deep recursion, while
  // a drainer snapshots mid-flight: drain() must only ever see fully
  // published events (this is the TSan hot spot).
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const telem::TraceSnapshot mid = telem::drain();
      for (const telem::ThreadTrace& t : mid.threads) {
        for (const telem::SpanEvent& e : t.events) {
          ASSERT_NE(e.name, nullptr);
          ASSERT_LE(e.start_ns, e.end_ns);
        }
      }
    }
  });
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w] {
      telem::set_thread_name("worker " + std::to_string(w));
      for (int i = 0; i < kIters; ++i) nested_spans(0);
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true, std::memory_order_relaxed);
  drainer.join();
  telem::set_enabled(false);

  const telem::TraceSnapshot trace = telem::drain();
  EXPECT_EQ(trace.max_depth(), 4u);
  int worker_tracks = 0;
  for (const telem::ThreadTrace& t : trace.threads) {
    if (t.name.rfind("worker ", 0) != 0) continue;
    ++worker_tracks;
    EXPECT_EQ(t.dropped, 0u);
    ASSERT_EQ(t.events.size(), std::size_t{4} * kIters);
    for (const telem::SpanEvent& e : t.events) {
      // The recorded depth must agree with the name's nesting level.
      for (std::uint32_t d = 0; d < 4; ++d) {
        if (std::string(e.name) == kDepthName[d]) EXPECT_EQ(e.depth, d);
      }
    }
    // Spans close inner-first, so within each recursion the ring holds
    // d3, d2, d1, d0 — and every parent's interval contains its child's.
    for (std::size_t i = 0; i + 3 < t.events.size(); i += 4) {
      for (int d = 0; d < 3; ++d) {
        const telem::SpanEvent& child = t.events[i + static_cast<std::size_t>(d)];
        const telem::SpanEvent& parent =
            t.events[i + static_cast<std::size_t>(d) + 1];
        EXPECT_LE(parent.start_ns, child.start_ns);
        EXPECT_GE(parent.end_ns, child.end_ns);
        EXPECT_EQ(parent.depth + 1, child.depth);
      }
    }
  }
  EXPECT_EQ(worker_tracks, kThreads);
}

TEST_F(TelemetryTest, ChromeTraceExporterGoldenFile) {
  // Hand-built snapshot -> exact bytes. If this breaks, the exporter's
  // format changed: update the golden string only after loading the new
  // output in Perfetto.
  telem::TraceSnapshot trace;
  trace.epoch_ns = 1000;
  telem::ThreadTrace t;
  t.tid = 0;
  t.name = "main";
  t.dropped = 2;
  t.events.push_back(telem::SpanEvent{"flow", 1000, 501000, 0, 0});
  t.events.push_back(telem::SpanEvent{"flow/litho", 2500, 400000, 7, 1});
  trace.threads.push_back(std::move(t));

  telem::MetricsSnapshot metrics;
  metrics.counters["pool.steals"] = 3;
  metrics.gauges["snapshot.rtree_bytes"] = 45528;
  metrics.histograms["pool.queue_depth"] =
      telem::HistogramSnapshot{{0, 1, 2}, {4, 2, 1, 0}, 7};

  const std::string expected =
      "{\n"
      "\"traceEvents\": [\n"
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"dfmkit\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"main\"}},\n"
      "{\"name\": \"flow\", \"ph\": \"X\", \"pid\": 1, \"tid\": 0, "
      "\"ts\": 0.000, \"dur\": 500.000, \"args\": {\"arg\": 0, "
      "\"depth\": 0}},\n"
      "{\"name\": \"flow/litho\", \"ph\": \"X\", \"pid\": 1, \"tid\": 0, "
      "\"ts\": 1.500, \"dur\": 397.500, \"args\": {\"arg\": 7, "
      "\"depth\": 1}}\n"
      "],\n"
      "\"displayTimeUnit\": \"ms\",\n"
      "\"otherData\": {\"tool\": \"dfmkit\", \"dropped_events\": 2},\n"
      "\"metrics\": {\"counters\": {\"pool.steals\": 3}, "
      "\"gauges\": {\"snapshot.rtree_bytes\": 45528}, "
      "\"histograms\": {\"pool.queue_depth\": {\"bounds\": [0, 1, 2], "
      "\"counts\": [4, 2, 1, 0], \"total\": 7}}}\n"
      "}\n";
  EXPECT_EQ(telem::chrome_trace_json(trace, metrics), expected);
}

TEST_F(TelemetryTest, ExporterOrdersParentsBeforeChildren) {
  // Events arrive in close order (children first); the exporter must
  // re-sort by start time so viewers nest them correctly.
  telem::TraceSnapshot trace;
  telem::ThreadTrace t;
  t.tid = 3;
  t.name = "w";
  t.events.push_back(telem::SpanEvent{"child", 200, 300, 0, 1});
  t.events.push_back(telem::SpanEvent{"parent", 100, 400, 0, 0});
  trace.threads.push_back(std::move(t));
  const std::string json =
      telem::chrome_trace_json(trace, telem::MetricsSnapshot{});
  EXPECT_LT(json.find("\"parent\""), json.find("\"child\""));
}

TEST_F(TelemetryTest, RingOverflowDropsAndCounts) {
  if (!telem::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telem::set_ring_capacity(8);
  telem::set_enabled(true);
  // A fresh thread registers a fresh (8-slot) ring.
  std::thread rec([] {
    telem::set_thread_name("overflow");
    for (int i = 0; i < 20; ++i) {
      telem::Span s("ring/span");
    }
  });
  rec.join();
  telem::set_enabled(false);

  const telem::TraceSnapshot trace = telem::drain();
  const telem::ThreadTrace* t = nullptr;
  for (const telem::ThreadTrace& tt : trace.threads) {
    if (tt.name == "overflow") t = &tt;
  }
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->events.size(), 8u);  // never wraps: first 8 survive
  EXPECT_EQ(t->dropped, 12u);
}

TEST_F(TelemetryTest, DisabledSpansRecordNothing) {
  if (!telem::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  {
    TELEM_SPAN("off/span");
  }
  EXPECT_EQ(telem::drain().total_events(), 0u);

  // A span born disabled stays inert even if recording starts before it
  // closes — half-open epochs never leak partial scopes.
  {
    telem::Span s("off/straddler");
    telem::set_enabled(true);
  }
  EXPECT_EQ(telem::drain().total_events(), 0u);
  {
    TELEM_SPAN("on/span");
  }
  telem::set_enabled(false);
  EXPECT_EQ(telem::drain().total_events(), 1u);
}

TEST_F(TelemetryTest, HistogramClampsIntoEdgeBuckets) {
  telem::Histogram h({0.0, 1.0, 4.0});
  h.observe(-100.0);  // below every bound: first bucket
  h.observe(0.0);     // at a bound: that bucket (v <= bounds[i])
  h.observe(3.0);
  h.observe(4.0);
  h.observe(1e9);  // above every bound: overflow bucket
  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST_F(TelemetryTest, MetricsRegistrySemantics) {
  // Kinds are separate namespaces; lookups are stable references.
  telem::Counter& c = telem::counter("reg/x");
  telem::Gauge& g = telem::gauge("reg/x");
  c.add(2);
  g.set(1.5);
  EXPECT_EQ(&telem::counter("reg/x"), &c);
  EXPECT_EQ(telem::counter("reg/x").value(), 2u);
  EXPECT_DOUBLE_EQ(telem::gauge("reg/x").value(), 1.5);

  // First registration fixes histogram bounds.
  telem::Histogram& h = telem::histogram("reg/h", {1.0, 2.0});
  telem::Histogram& h2 = telem::histogram("reg/h", {99.0});
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));

  // reset_metrics zeroes values but keeps registrations (and cached
  // references, which the TELEM_* macros hold in function statics).
  telem::reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  const telem::MetricsSnapshot snap = telem::metrics_snapshot();
  EXPECT_EQ(snap.counters.count("reg/x"), 1u);
  EXPECT_EQ(snap.gauges.count("reg/x"), 1u);
  EXPECT_EQ(snap.histograms.count("reg/h"), 1u);
}

TEST_F(TelemetryTest, RecordingDoesNotChangeTheFlowReport) {
  DesignParams p;
  p.seed = 7;
  p.rows = 2;
  p.cells_per_row = 4;
  p.routes = 8;
  const Library lib = generate_design(p);
  LayerMap layers;
  for (const LayerKey k : LayoutSnapshot::standard_flow_layers()) {
    layers.emplace(k, lib.flatten(lib.top_cells()[0], k));
  }
  DfmFlowOptions opt;
  opt.threads = 2;
  opt.run_litho = false;  // keep the suite fast; litho is covered by o1

  const DfmFlowReport off = run_dfm_flow(LayoutSnapshot{layers}, opt);
  telem::set_enabled(true);
  const DfmFlowReport on = run_dfm_flow(LayoutSnapshot{layers}, opt);
  telem::set_enabled(false);
  EXPECT_TRUE(reports_equivalent(off, on));
  if (telem::compiled_in()) {
    EXPECT_GT(telem::drain().total_events(), 0u);
  }
}

}  // namespace
}  // namespace dfm
