// The telemetry subsystem's contracts: span nesting stays consistent
// under multi-thread contention (with a concurrent drain — the TSan
// target), the Chrome-trace exporter's output is byte-stable, rings drop
// (and count) instead of wrapping, histograms clamp into their edge
// buckets, and — the one that matters for sign-off — recording never
// changes the flow's answer.
#include "core/telemetry.h"

#include "core/dfm_flow.h"
#include "gen/generators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace dfm {
namespace {

namespace telem = ::dfm::telemetry;

/// Every test leaves the registry the way it found it: recording off,
/// rings empty, default capacity.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telem::set_enabled(false);
    telem::clear();
    telem::reset_metrics();
  }
  void TearDown() override {
    telem::set_enabled(false);
    telem::set_ring_capacity(std::size_t{1} << 16);
    telem::clear();
    telem::reset_metrics();
  }
};

constexpr const char* kDepthName[] = {"nest/d0", "nest/d1", "nest/d2",
                                      "nest/d3"};

void nested_spans(int depth) {
  if (depth >= 4) return;
  telem::Span s(kDepthName[depth]);
  nested_spans(depth + 1);
}

TEST_F(TelemetryTest, SpanNestingUnderContention) {
  if (!telem::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telem::set_enabled(true);

  // 8 recording threads, each running the same 4-deep recursion, while
  // a drainer snapshots mid-flight: drain() must only ever see fully
  // published events (this is the TSan hot spot).
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const telem::TraceSnapshot mid = telem::drain();
      for (const telem::ThreadTrace& t : mid.threads) {
        for (const telem::SpanEvent& e : t.events) {
          ASSERT_NE(e.name, nullptr);
          ASSERT_LE(e.start_ns, e.end_ns);
        }
      }
    }
  });
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w] {
      telem::set_thread_name("worker " + std::to_string(w));
      for (int i = 0; i < kIters; ++i) nested_spans(0);
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true, std::memory_order_relaxed);
  drainer.join();
  telem::set_enabled(false);

  const telem::TraceSnapshot trace = telem::drain();
  EXPECT_EQ(trace.max_depth(), 4u);
  int worker_tracks = 0;
  for (const telem::ThreadTrace& t : trace.threads) {
    if (t.name.rfind("worker ", 0) != 0) continue;
    ++worker_tracks;
    EXPECT_EQ(t.dropped, 0u);
    ASSERT_EQ(t.events.size(), std::size_t{4} * kIters);
    for (const telem::SpanEvent& e : t.events) {
      // The recorded depth must agree with the name's nesting level.
      for (std::uint32_t d = 0; d < 4; ++d) {
        if (std::string(e.name) == kDepthName[d]) EXPECT_EQ(e.depth, d);
      }
    }
    // Spans close inner-first, so within each recursion the ring holds
    // d3, d2, d1, d0 — and every parent's interval contains its child's.
    for (std::size_t i = 0; i + 3 < t.events.size(); i += 4) {
      for (int d = 0; d < 3; ++d) {
        const telem::SpanEvent& child = t.events[i + static_cast<std::size_t>(d)];
        const telem::SpanEvent& parent =
            t.events[i + static_cast<std::size_t>(d) + 1];
        EXPECT_LE(parent.start_ns, child.start_ns);
        EXPECT_GE(parent.end_ns, child.end_ns);
        EXPECT_EQ(parent.depth + 1, child.depth);
      }
    }
  }
  EXPECT_EQ(worker_tracks, kThreads);
}

TEST_F(TelemetryTest, ChromeTraceExporterGoldenFile) {
  // Hand-built snapshot -> exact bytes. If this breaks, the exporter's
  // format changed: update the golden string only after loading the new
  // output in Perfetto.
  telem::TraceSnapshot trace;
  trace.epoch_ns = 1000;
  telem::ThreadTrace t;
  t.tid = 0;
  t.name = "main";
  t.dropped = 2;
  t.events.push_back(telem::SpanEvent{"flow", 1000, 501000, 0, 0});
  t.events.push_back(telem::SpanEvent{"flow/litho", 2500, 400000, 7, 1});
  trace.threads.push_back(std::move(t));

  telem::MetricsSnapshot metrics;
  metrics.counters["pool.steals"] = 3;
  metrics.gauges["snapshot.rtree_bytes"] = 45528;
  metrics.histograms["pool.queue_depth"] =
      telem::HistogramSnapshot{{0, 1, 2}, {4, 2, 1, 0}, 7};

  const std::string expected =
      "{\n"
      "\"traceEvents\": [\n"
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"dfmkit\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"main\"}},\n"
      "{\"name\": \"flow\", \"ph\": \"X\", \"pid\": 1, \"tid\": 0, "
      "\"ts\": 0.000, \"dur\": 500.000, \"args\": {\"arg\": 0, "
      "\"depth\": 0}},\n"
      "{\"name\": \"flow/litho\", \"ph\": \"X\", \"pid\": 1, \"tid\": 0, "
      "\"ts\": 1.500, \"dur\": 397.500, \"args\": {\"arg\": 7, "
      "\"depth\": 1}}\n"
      "],\n"
      "\"displayTimeUnit\": \"ms\",\n"
      "\"otherData\": {\"tool\": \"dfmkit\", \"dropped_events\": 2},\n"
      "\"metrics\": {\"counters\": {\"pool.steals\": 3}, "
      "\"gauges\": {\"snapshot.rtree_bytes\": 45528}, "
      "\"histograms\": {\"pool.queue_depth\": {\"bounds\": [0, 1, 2], "
      "\"counts\": [4, 2, 1, 0], \"total\": 7}}}\n"
      "}\n";
  EXPECT_EQ(telem::chrome_trace_json(trace, metrics), expected);
}

TEST_F(TelemetryTest, ExporterOrdersParentsBeforeChildren) {
  // Events arrive in close order (children first); the exporter must
  // re-sort by start time so viewers nest them correctly.
  telem::TraceSnapshot trace;
  telem::ThreadTrace t;
  t.tid = 3;
  t.name = "w";
  t.events.push_back(telem::SpanEvent{"child", 200, 300, 0, 1});
  t.events.push_back(telem::SpanEvent{"parent", 100, 400, 0, 0});
  trace.threads.push_back(std::move(t));
  const std::string json =
      telem::chrome_trace_json(trace, telem::MetricsSnapshot{});
  EXPECT_LT(json.find("\"parent\""), json.find("\"child\""));
}

TEST_F(TelemetryTest, RingOverflowDropsAndCounts) {
  if (!telem::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telem::set_ring_capacity(8);
  telem::set_enabled(true);
  // A fresh thread registers a fresh (8-slot) ring.
  std::thread rec([] {
    telem::set_thread_name("overflow");
    for (int i = 0; i < 20; ++i) {
      telem::Span s("ring/span");
    }
  });
  rec.join();
  telem::set_enabled(false);

  const telem::TraceSnapshot trace = telem::drain();
  const telem::ThreadTrace* t = nullptr;
  for (const telem::ThreadTrace& tt : trace.threads) {
    if (tt.name == "overflow") t = &tt;
  }
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->events.size(), 8u);  // never wraps: first 8 survive
  EXPECT_EQ(t->dropped, 12u);
}

TEST_F(TelemetryTest, DisabledSpansRecordNothing) {
  if (!telem::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  {
    TELEM_SPAN("off/span");
  }
  EXPECT_EQ(telem::drain().total_events(), 0u);

  // A span born disabled stays inert even if recording starts before it
  // closes — half-open epochs never leak partial scopes.
  {
    telem::Span s("off/straddler");
    telem::set_enabled(true);
  }
  EXPECT_EQ(telem::drain().total_events(), 0u);
  {
    TELEM_SPAN("on/span");
  }
  telem::set_enabled(false);
  EXPECT_EQ(telem::drain().total_events(), 1u);
}

TEST_F(TelemetryTest, HistogramClampsIntoEdgeBuckets) {
  telem::Histogram h({0.0, 1.0, 4.0});
  h.observe(-100.0);  // below every bound: first bucket
  h.observe(0.0);     // at a bound: that bucket (v <= bounds[i])
  h.observe(3.0);
  h.observe(4.0);
  h.observe(1e9);  // above every bound: overflow bucket
  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST_F(TelemetryTest, MetricsRegistrySemantics) {
  // Kinds are separate namespaces; lookups are stable references.
  telem::Counter& c = telem::counter("reg/x");
  telem::Gauge& g = telem::gauge("reg/x");
  c.add(2);
  g.set(1.5);
  EXPECT_EQ(&telem::counter("reg/x"), &c);
  EXPECT_EQ(telem::counter("reg/x").value(), 2u);
  EXPECT_DOUBLE_EQ(telem::gauge("reg/x").value(), 1.5);

  // First registration fixes histogram bounds.
  telem::Histogram& h = telem::histogram("reg/h", {1.0, 2.0});
  telem::Histogram& h2 = telem::histogram("reg/h", {99.0});
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));

  // reset_metrics zeroes values but keeps registrations (and cached
  // references, which the TELEM_* macros hold in function statics).
  telem::reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  const telem::MetricsSnapshot snap = telem::metrics_snapshot();
  EXPECT_EQ(snap.counters.count("reg/x"), 1u);
  EXPECT_EQ(snap.gauges.count("reg/x"), 1u);
  EXPECT_EQ(snap.histograms.count("reg/h"), 1u);
}

TEST_F(TelemetryTest, HistogramQuantileEmptySnapshotIsZero) {
  const telem::HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(telem::histogram_quantile(empty, 0.5), 0.0);
  // All-zero counts are equally empty, whatever the bounds say.
  const telem::HistogramSnapshot zeros{{1.0}, {0, 0}, 0, 0.0};
  EXPECT_DOUBLE_EQ(telem::histogram_quantile(zeros, 0.99), 0.0);
}

TEST_F(TelemetryTest, HistogramQuantileSingleBucketInterpolates) {
  // All 4 observations land in the one finite bucket (0, 10]; the
  // estimate interpolates linearly from the zero anchor.
  const telem::HistogramSnapshot h{{10.0}, {4, 0}, 4, 0.0};
  EXPECT_DOUBLE_EQ(telem::histogram_quantile(h, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(telem::histogram_quantile(h, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(telem::histogram_quantile(h, 1.0), 10.0);
}

TEST_F(TelemetryTest, HistogramQuantileOverflowClampsToLastBound) {
  // Every observation blew past the finite bounds: the estimator must
  // not extrapolate, it reports the last bound it can vouch for.
  const telem::HistogramSnapshot h{{1.0, 2.0}, {0, 0, 5}, 5, 0.0};
  EXPECT_DOUBLE_EQ(telem::histogram_quantile(h, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(telem::histogram_quantile(h, 0.99), 2.0);
}

TEST_F(TelemetryTest, HistogramQuantileExactBucketBoundaries) {
  // Ranks that land exactly on a cumulative-count edge resolve to that
  // bucket's upper bound (frac == 1), matching Prometheus' estimator.
  const telem::HistogramSnapshot h{{1.0, 2.0, 4.0}, {2, 2, 4, 0}, 8, 0.0};
  EXPECT_DOUBLE_EQ(telem::histogram_quantile(h, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(telem::histogram_quantile(h, 0.50), 2.0);
  EXPECT_DOUBLE_EQ(telem::histogram_quantile(h, 1.00), 4.0);
}

TEST_F(TelemetryTest, SamplePercentileNearestRank) {
  EXPECT_DOUBLE_EQ(telem::sample_percentile({}, 0.5), 0.0);
  const std::vector<double> sorted{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(telem::sample_percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(telem::sample_percentile(sorted, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(telem::sample_percentile(sorted, 0.99), 5.0);
  EXPECT_DOUBLE_EQ(telem::sample_percentile(sorted, 1.0), 5.0);
}

TEST_F(TelemetryTest, PrometheusExpositionGoldenFile) {
  // Hand-built snapshot -> exact exposition bytes (text format 0.0.4).
  // If this breaks the scrape format changed: update the golden string
  // only after checking a real Prometheus accepts the new output.
  telem::MetricsSnapshot metrics;
  metrics.counters["pool.steals"] = 3;
  metrics.gauges["snapshot.rtree_bytes"] = 45528;
  metrics.histograms["service.op.flow.request_ms"] =
      telem::HistogramSnapshot{{1, 5, 10}, {4, 2, 1, 1}, 8, 42.5};

  const std::string expected =
      "# TYPE pool_steals counter\n"
      "pool_steals 3\n"
      "# TYPE snapshot_rtree_bytes gauge\n"
      "snapshot_rtree_bytes 45528\n"
      "# TYPE service_op_flow_request_ms histogram\n"
      "service_op_flow_request_ms_bucket{le=\"1\"} 4\n"
      "service_op_flow_request_ms_bucket{le=\"5\"} 6\n"
      "service_op_flow_request_ms_bucket{le=\"10\"} 7\n"
      "service_op_flow_request_ms_bucket{le=\"+Inf\"} 8\n"
      "service_op_flow_request_ms_sum 42.5\n"
      "service_op_flow_request_ms_count 8\n";
  EXPECT_EQ(telem::metrics_text(metrics), expected);
}

TEST_F(TelemetryTest, DroppedEventsSurfaceAsAGauge) {
  if (!telem::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  telem::set_ring_capacity(4);
  telem::set_enabled(true);
  std::thread rec([] {
    telem::set_thread_name("dropper");
    for (int i = 0; i < 10; ++i) {
      telem::Span s("drop/span");
    }
  });
  rec.join();
  telem::set_enabled(false);

  EXPECT_EQ(telem::dropped_events(), 6u);
  const telem::MetricsSnapshot snap = telem::metrics_snapshot();
  const auto it = snap.gauges.find("telemetry.dropped_events");
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_DOUBLE_EQ(it->second, 6.0);
  // ... and through it, the JSON metrics block every export carries.
  EXPECT_NE(telem::metrics_json(snap).find("\"telemetry.dropped_events\": 6"),
            std::string::npos);
}

TEST_F(TelemetryTest, ChromeExporterEmitsSpanIdsOnlyWhenSet) {
  telem::TraceSnapshot trace;
  telem::ThreadTrace t;
  t.tid = 0;
  t.name = "main";
  t.events.push_back(telem::SpanEvent{"plain", 100, 200, 0, 0});
  t.events.push_back(telem::SpanEvent{"linked", 300, 400, 0, 0, 7, 3});
  trace.threads.push_back(std::move(t));
  const std::string json =
      telem::chrome_trace_json(trace, telem::MetricsSnapshot{});
  // The id-less span keeps its historical bytes (no span_id key at all);
  // the linked span carries both ids for trace-merge to stitch on.
  EXPECT_NE(json.find("\"span_id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"parent_span\": 3"), std::string::npos);
  const std::size_t plain = json.find("\"plain\"");
  const std::size_t linked = json.find("\"linked\"");
  ASSERT_NE(plain, std::string::npos);
  ASSERT_NE(linked, std::string::npos);
  EXPECT_EQ(json.find("span_id", plain), json.find("span_id", linked));
}

TEST_F(TelemetryTest, SpanIdsAreUniqueAndNonZero) {
  const std::uint64_t a = telem::next_span_id();
  const std::uint64_t b = telem::next_span_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST_F(TelemetryTest, RecordingDoesNotChangeTheFlowReport) {
  DesignParams p;
  p.seed = 7;
  p.rows = 2;
  p.cells_per_row = 4;
  p.routes = 8;
  const Library lib = generate_design(p);
  LayerMap layers;
  for (const LayerKey k : LayoutSnapshot::standard_flow_layers()) {
    layers.emplace(k, lib.flatten(lib.top_cells()[0], k));
  }
  DfmFlowOptions opt;
  opt.threads = 2;
  opt.run_litho = false;  // keep the suite fast; litho is covered by o1

  const DfmFlowReport off = run_dfm_flow(LayoutSnapshot{layers}, opt);
  telem::set_enabled(true);
  const DfmFlowReport on = run_dfm_flow(LayoutSnapshot{layers}, opt);
  telem::set_enabled(false);
  EXPECT_TRUE(reports_equivalent(off, on));
  if (telem::compiled_in()) {
    EXPECT_GT(telem::drain().total_events(), 0u);
  }
}

}  // namespace
}  // namespace dfm
