#include "dpt/dpt.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

const Tech& tech() { return Tech::standard(); }  // dpt_space = 80

TEST(RegionDistance, BasicAndCap) {
  const Region a{Rect{0, 0, 10, 10}};
  const Region b{Rect{25, 0, 35, 10}};
  EXPECT_EQ(region_distance(a, b, 100), 15);
  EXPECT_EQ(region_distance(a, b, 5), 5);  // capped
  EXPECT_EQ(region_distance(a, a, 100), 0);
}

TEST(ConflictGraph, EdgesOnlyBelowDptSpace) {
  Region layer;
  layer.add(Rect{0, 0, 100, 100});
  layer.add(Rect{160, 0, 260, 100});   // gap 60 < 80: conflict
  layer.add(Rect{400, 0, 500, 100});   // gap 140: no conflict
  const ConflictGraph g = build_conflict_graph(layer, tech().dpt_space);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g.edges.size(), 1u);
}

TEST(ConflictGraph, TouchingShapesAreOneNode) {
  Region layer;
  layer.add(Rect{0, 0, 100, 100});
  layer.add(Rect{100, 0, 200, 100});
  const ConflictGraph g = build_conflict_graph(layer, tech().dpt_space);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_TRUE(g.edges.empty());
}

TEST(TwoColor, ChainIsBipartite) {
  Region layer;
  for (int i = 0; i < 6; ++i) {
    layer.add(Rect{i * 160, 0, i * 160 + 100, 100});  // gaps 60: a chain
  }
  const ConflictGraph g = build_conflict_graph(layer, tech().dpt_space);
  const ColoringResult col = two_color(g);
  EXPECT_TRUE(col.bipartite);
  for (const auto& [u, v] : g.edges) {
    EXPECT_NE(col.color[u], col.color[v]);
  }
  // Alternating colors along the chain.
  int zeros = 0;
  for (const int c : col.color) zeros += (c == 0);
  EXPECT_EQ(zeros, 3);
}

TEST(TwoColor, TriangleIsOdd) {
  Cell c{"c"};
  inject_odd_cycle(c, tech(), {0, 0});
  const Region layer = c.local_region(layers::kMetal1);
  const ConflictGraph g = build_conflict_graph(layer, tech().dpt_space);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g.edges.size(), 3u);
  const ColoringResult col = two_color(g);
  EXPECT_FALSE(col.bipartite);
  ASSERT_FALSE(col.odd_cycles.empty());
  EXPECT_GE(col.odd_cycles.front().size(), 3u);
}

TEST(Decompose, BipartiteNeedsNoStitches) {
  Region layer;
  for (int i = 0; i < 4; ++i) {
    layer.add(Rect{i * 160, 0, i * 160 + 100, 400});
  }
  const Decomposition d = decompose_dpt(layer, tech());
  EXPECT_TRUE(d.compliant);
  EXPECT_TRUE(d.stitches.empty());
  EXPECT_EQ((d.mask_a | d.mask_b), layer);
  EXPECT_TRUE((d.mask_a & d.mask_b).empty());
}

TEST(Decompose, MaskSpacingIsLegal) {
  Region layer;
  for (int i = 0; i < 6; ++i) {
    layer.add(Rect{i * 160, 0, i * 160 + 100, 400});
  }
  const Decomposition d = decompose_dpt(layer, tech());
  const DptScore s = score_decomposition(d, tech());
  EXPECT_DOUBLE_EQ(s.spacing_score, 1.0);
  EXPECT_GT(s.composite, 0.8);
}

TEST(Decompose, OddCycleResolvedWithStitch) {
  Cell c{"c"};
  inject_odd_cycle(c, tech(), {0, 0});
  const Region layer = c.local_region(layers::kMetal1);
  const Decomposition d = decompose_dpt(layer, tech());
  EXPECT_TRUE(d.compliant) << "the stitcher must break a simple triangle";
  EXPECT_GE(d.stitches.size(), 1u);
  // Union of masks still covers the layer (stitch overlap is extra).
  EXPECT_TRUE((layer - (d.mask_a | d.mask_b)).empty());
  // The overlap is exactly the stitch area.
  EXPECT_FALSE((d.mask_a & d.mask_b).empty());
}

TEST(Decompose, EmptyLayer) {
  const Decomposition d = decompose_dpt(Region{}, tech());
  EXPECT_TRUE(d.compliant);
  EXPECT_TRUE(d.mask_a.empty());
  EXPECT_TRUE(d.mask_b.empty());
  EXPECT_EQ(d.nodes, 0);
}

TEST(Decompose, DenseCellRowsDecompose) {
  // Metal-1 of a generated design at DPT-critical pitch.
  DesignParams p;
  p.seed = 31;
  p.rows = 1;
  p.cells_per_row = 4;
  p.routes = 0;
  p.via_fields = 0;
  const Library lib = generate_design(p);
  const Region m1 = lib.flatten(lib.top_cells()[0], layers::kMetal1);
  const Decomposition d = decompose_dpt(m1, p.tech);
  EXPECT_GT(d.nodes, 0);
  // Standard-cell M1 at this pitch has conflicts but no odd cycles.
  EXPECT_TRUE(d.compliant);
}

TEST(Score, PerfectDecompositionScoresHigh) {
  Decomposition d;
  d.mask_a = Region{Rect{0, 0, 100, 100}};
  d.mask_b = Region{Rect{500, 0, 600, 100}};
  d.nodes = 2;
  d.compliant = true;
  const DptScore s = score_decomposition(d, tech());
  EXPECT_DOUBLE_EQ(s.density_balance, 1.0);
  EXPECT_DOUBLE_EQ(s.stitch_score, 1.0);
  EXPECT_DOUBLE_EQ(s.overlay_score, 1.0);
  EXPECT_DOUBLE_EQ(s.spacing_score, 1.0);
  EXPECT_DOUBLE_EQ(s.composite, 1.0);
}

TEST(Score, ImbalancedMasksScoreLower) {
  Decomposition balanced;
  balanced.mask_a = Region{Rect{0, 0, 100, 100}};
  balanced.mask_b = Region{Rect{500, 0, 600, 100}};
  balanced.nodes = 2;
  Decomposition skewed = balanced;
  skewed.mask_a = Region{Rect{0, 0, 300, 300}};
  EXPECT_LT(score_decomposition(skewed, tech()).density_balance,
            score_decomposition(balanced, tech()).density_balance);
}

TEST(Score, SameMaskViolationTanksSpacingScore) {
  Decomposition d;
  d.mask_a.add(Rect{0, 0, 100, 100});
  d.mask_a.add(Rect{130, 0, 230, 100});  // 30 < dpt_space on one mask
  d.mask_b = Region{Rect{1000, 0, 1100, 100}};
  d.nodes = 3;
  const DptScore s = score_decomposition(d, tech());
  EXPECT_DOUBLE_EQ(s.spacing_score, 0.5);
  EXPECT_LT(s.composite, 1.0);
}

TEST(Rebalance, EqualizesMaskAreas) {
  // Four independent conflict pairs of very different sizes: the naive
  // coloring puts all big shapes on mask A.
  Decomposition d;
  d.nodes = 8;
  d.compliant = true;
  for (int i = 0; i < 4; ++i) {
    const Coord y = i * 5000;
    const Coord big = 400 + 300 * i;
    d.mask_a.add(Rect{0, y, big, y + big});          // growing squares
    d.mask_b.add(Rect{big + 60, y, big + 160, y + 100});  // small partners
  }
  const DptScore before = score_decomposition(d, tech());
  const Decomposition balanced = rebalance_masks(d, tech());
  const DptScore after = score_decomposition(balanced, tech());
  EXPECT_GT(after.density_balance, before.density_balance);
  // Legality and coverage are untouched.
  EXPECT_EQ(balanced.mask_a | balanced.mask_b, d.mask_a | d.mask_b);
  EXPECT_DOUBLE_EQ(after.spacing_score, 1.0);
  EXPECT_GT(after.composite, before.composite);
}

TEST(Rebalance, ConflictPairsNeverSplit) {
  // A conflicting pair must flip together or not at all.
  Decomposition d;
  d.nodes = 2;
  d.compliant = true;
  d.mask_a.add(Rect{0, 0, 1000, 1000});   // huge
  d.mask_b.add(Rect{1060, 0, 1160, 100}); // small, within dpt conflict range
  const Decomposition balanced = rebalance_masks(d, tech());
  // Whatever the assignment, the two shapes stay on opposite masks.
  const bool big_on_a = balanced.mask_a.contains({500, 500});
  const Region& small_mask = big_on_a ? balanced.mask_b : balanced.mask_a;
  EXPECT_TRUE(small_mask.contains({1100, 50}));
}

TEST(Rebalance, AlreadyBalancedIsStable) {
  Decomposition d;
  d.nodes = 2;
  d.mask_a = Region{Rect{0, 0, 100, 100}};
  d.mask_b = Region{Rect{5000, 0, 5100, 100}};
  const Decomposition balanced = rebalance_masks(d, tech());
  EXPECT_EQ(score_decomposition(balanced, tech()).density_balance, 1.0);
}

}  // namespace
}  // namespace dfm
