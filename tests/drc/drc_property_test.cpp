// Property sweeps cross-checking the morphology-based DRC checks against
// brute-force measurements on random rect soups.
#include "drc/engine.h"

#include "gen/rng.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

Region random_soup(Rng& rng, int shapes, Coord extent) {
  Region r;
  for (int i = 0; i < shapes; ++i) {
    const Coord x = rng.uniform(0, extent);
    const Coord y = rng.uniform(0, extent);
    const Coord w = rng.uniform(20, extent / 4);
    const Coord h = rng.uniform(20, extent / 4);
    r.add(Rect{x, y, x + w, y + h});
  }
  return r;
}

// Brute-force minimum Chebyshev gap between distinct components.
Coord min_component_gap(const Region& r, Coord cap) {
  const auto comps = r.components();
  Coord best = cap;
  for (std::size_t i = 0; i < comps.size(); ++i) {
    for (std::size_t j = i + 1; j < comps.size(); ++j) {
      best = std::min(best, region_distance(comps[i], comps[j], best));
    }
  }
  return best;
}

class DrcProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(DrcProperty, SpacingCheckAgreesWithBruteForceGap) {
  Rng rng(GetParam());
  const Region r = random_soup(rng, 8, 600);
  const Coord rule = 50;
  const Coord gap = min_component_gap(r, rule + 100);
  const bool flagged = !check_min_spacing(r, rule, "S").empty();
  if (gap < rule && gap > 0) {
    EXPECT_TRUE(flagged) << "gap " << gap;
  }
  if (!flagged) {
    // No violation reported: no inter-component gap below the rule.
    // (Intra-component notches can still exist; they'd have been flagged.)
    EXPECT_TRUE(gap >= rule || gap == 0) << "gap " << gap;
  }
}

TEST_P(DrcProperty, WidthCheckNeverFlagsFatShapes) {
  Rng rng(GetParam() * 17 + 2);
  // Shapes all at least 80 wide in both axes.
  Region r;
  for (int i = 0; i < 6; ++i) {
    const Coord x = rng.uniform(0, 800);
    const Coord y = rng.uniform(0, 800);
    r.add(Rect{x, y, x + rng.uniform(80, 300), y + rng.uniform(80, 300)});
  }
  EXPECT_TRUE(check_min_width(r, 80, "W").empty());
}

TEST_P(DrcProperty, ViolationMarkersLieNearTheGeometry) {
  Rng rng(GetParam() * 23 + 9);
  const Region r = random_soup(rng, 10, 500);
  for (const Violation& v : check_min_spacing(r, 60, "S")) {
    EXPECT_TRUE(v.marker.expanded(2).overlaps(r.bbox().expanded(60)));
    EXPECT_FALSE(v.marker.is_empty());
  }
}

TEST_P(DrcProperty, EnclosureCheckConsistentWithRegionAlgebra) {
  Rng rng(GetParam() * 31 + 4);
  Region inner, outer;
  for (int i = 0; i < 5; ++i) {
    const Coord x = rng.uniform(0, 1000);
    const Coord y = rng.uniform(0, 1000);
    inner.add(Rect{x, y, x + 50, y + 50});
    if (rng.chance(0.7)) {
      outer.add(Rect{x - 10, y - 10, x + 60, y + 60});  // full margin
    } else {
      outer.add(Rect{x, y, x + 50, y + 50});  // zero margin
    }
  }
  const auto violations = check_enclosure(inner, outer, 10, "E");
  const bool algebra_clean = (inner.bloated(10) - outer).empty();
  EXPECT_EQ(violations.empty(), algebra_clean);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DrcProperty, ::testing::Range(1u, 13u));

}  // namespace
}  // namespace dfm
