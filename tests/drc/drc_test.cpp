#include "drc/engine.h"

#include "core/snapshot.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

TEST(MinWidth, ExactMinimumIsLegal) {
  const Region r{Rect{0, 0, 50, 500}};
  EXPECT_TRUE(check_min_width(r, 50, "W").empty());
}

TEST(MinWidth, OneBelowMinimumFlags) {
  const Region r{Rect{0, 0, 49, 500}};
  const auto v = check_min_width(r, 50, "W");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "W");
  EXPECT_EQ(v[0].measured, 49);
}

TEST(MinWidth, LocalizedNeckIsFlagged) {
  // Dumbbell: two fat pads joined by a thin neck.
  Region r;
  r.add(Rect{0, 0, 100, 100});
  r.add(Rect{100, 40, 200, 70});  // 30-wide neck
  r.add(Rect{200, 0, 300, 100});
  const auto v = check_min_width(r, 50, "W");
  ASSERT_EQ(v.size(), 1u);
  // Marker covers the neck, not the pads.
  EXPECT_TRUE(v[0].marker.overlaps(Rect{100, 40, 200, 70}));
  EXPECT_LT(v[0].marker.width(), 160);
}

class MinWidthSweep : public ::testing::TestWithParam<Coord> {};

TEST_P(MinWidthSweep, FlagsIffBelowRule) {
  const Coord w = GetParam();
  const Region r{Rect{0, 0, w, 1000}};
  const auto v = check_min_width(r, 50, "W");
  if (w < 50) {
    ASSERT_EQ(v.size(), 1u) << "w=" << w;
    EXPECT_EQ(v[0].measured, w);
  } else {
    EXPECT_TRUE(v.empty()) << "w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MinWidthSweep,
                         ::testing::Values(10, 37, 48, 49, 50, 51, 52, 80));

TEST(MinSpacing, ExactMinimumIsLegal) {
  Region r;
  r.add(Rect{0, 0, 100, 100});
  r.add(Rect{150, 0, 250, 100});
  EXPECT_TRUE(check_min_spacing(r, 50, "S").empty());
}

class MinSpacingSweep : public ::testing::TestWithParam<Coord> {};

TEST_P(MinSpacingSweep, FlagsIffBelowRule) {
  const Coord gap = GetParam();
  Region r;
  r.add(Rect{0, 0, 100, 100});
  r.add(Rect{100 + gap, 0, 200 + gap, 100});
  const auto v = check_min_spacing(r, 50, "S");
  if (gap < 50) {
    ASSERT_EQ(v.size(), 1u) << "gap=" << gap;
    EXPECT_EQ(v[0].measured, gap);
  } else {
    EXPECT_TRUE(v.empty()) << "gap=" << gap;
  }
}

INSTANTIATE_TEST_SUITE_P(Gaps, MinSpacingSweep,
                         ::testing::Values(1, 25, 48, 49, 50, 51, 70));

TEST(MinSpacing, DiagonalCornersUseChebyshev) {
  Region r;
  r.add(Rect{0, 0, 100, 100});
  r.add(Rect{130, 130, 230, 230});  // Chebyshev gap 30
  EXPECT_EQ(check_min_spacing(r, 50, "S").size(), 1u);
  Region r2;
  r2.add(Rect{0, 0, 100, 100});
  r2.add(Rect{160, 160, 260, 260});  // Chebyshev gap 60
  EXPECT_TRUE(check_min_spacing(r2, 50, "S").empty());
}

TEST(MinSpacing, NotchWithinOneShapeFlags) {
  const Polygon u{{{0, 0}, {300, 0}, {300, 200}, {180, 200}, {180, 80},
                   {120, 80}, {120, 200}, {0, 200}}};
  const Region r{u};
  const auto v = check_min_spacing(r, 100, "S");
  ASSERT_EQ(v.size(), 1u);  // the 60-wide notch
  EXPECT_EQ(v[0].measured, 60);
}

TEST(MinArea, SmallIslandFlags) {
  Region r;
  r.add(Rect{0, 0, 100, 100});    // area 10000
  r.add(Rect{500, 500, 550, 520});  // area 1000 < 2000
  const auto v = check_min_area(r, 2000, "A");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].measured, 1000);
  EXPECT_EQ(v[0].marker, (Rect{500, 500, 550, 520}));
}

TEST(Enclosure, CoveredViaIsClean) {
  const Region via{Rect{100, 100, 150, 150}};
  const Region metal{Rect{90, 90, 160, 160}};
  EXPECT_TRUE(check_enclosure(via, metal, 10, "E").empty());
}

TEST(Enclosure, InsufficientMarginFlags) {
  const Region via{Rect{100, 100, 150, 150}};
  const Region metal{Rect{95, 90, 160, 160}};  // only 5 on the left
  const auto v = check_enclosure(via, metal, 10, "E");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "E");
}

TEST(Enclosure, OneViolationPerVia) {
  Region vias, metal;
  for (int i = 0; i < 4; ++i) {
    const Coord x = i * 300;
    vias.add(Rect{x, 0, x + 50, 50});
    // Cover only the even vias adequately.
    if (i % 2 == 0) {
      metal.add(Rect{x - 10, -10, x + 60, 60});
    } else {
      metal.add(Rect{x, 0, x + 50, 50});  // zero margin
    }
  }
  EXPECT_EQ(check_enclosure(vias, metal, 10, "E").size(), 2u);
}

TEST(DensityCheck, FlagsSparseAndDenseTiles) {
  Region r;
  // Left tile fully covered (dense), middle ~50%, right empty (sparse).
  r.add(Rect{0, 0, 100, 100});
  r.add(Rect{100, 0, 150, 100});
  const auto v =
      check_density(r, Rect{0, 0, 300, 100}, 100, 0.25, 0.75, "D");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].marker.lo.x, 0);    // 100% tile
  EXPECT_EQ(v[1].marker.lo.x, 200);  // 0% tile
}

TEST(DrcEngine, CleanViaIsClean) {
  const Tech& t = Tech::standard();
  Library lib{"L"};
  const auto c = lib.new_cell("c");
  add_via(lib.cell(c), t, {1000, 1000}, ViaStyle::kSymmetric);
  DrcResult res = DrcEngine{RuleDeck::standard(t)}.run(LayoutSnapshot(lib, c));
  // Ignore density (a lone via can never meet chip-level density).
  int real = 0;
  for (const auto& v : res.violations) {
    if (v.rule.find(".D.") == std::string::npos) ++real;
  }
  EXPECT_EQ(real, 0) << "first: " << (res.violations.empty() ? "" : res.violations[0].rule);
}

TEST(DrcEngine, InjectedViolationsAreFound) {
  const Tech& t = Tech::standard();
  Library lib{"L"};
  const auto c = lib.new_cell("c");
  inject_spacing_violation(lib.cell(c), t, {0, 0});
  inject_notch(lib.cell(c), t, {5000, 0});
  const DrcEngine engine{RuleDeck::standard(t)};
  const DrcResult res = engine.run(LayoutSnapshot(lib, c));
  EXPECT_GE(res.count("M1.S.1"), 2);
}

TEST(DrcEngine, PinchAndBridgeCandidatesAreDrcClean) {
  // These constructs are litho-marginal but must pass sign-off DRC:
  // exactly the gap the DFM techniques exist to fill.
  const Tech& t = Tech::standard();
  Library lib{"L"};
  const auto c = lib.new_cell("c");
  inject_pinch_candidate(lib.cell(c), t, {0, 0});
  inject_bridge_candidate(lib.cell(c), t, {20000, 0});
  inject_odd_cycle(lib.cell(c), t, {40000, 0});
  const DrcResult res = DrcEngine{RuleDeck::standard(t)}.run(LayoutSnapshot(lib, c));
  int geometric = 0;
  for (const auto& v : res.violations) {
    if (v.rule.find(".D.") == std::string::npos &&
        v.rule.find(".A.") == std::string::npos) {
      ++geometric;
    }
  }
  EXPECT_EQ(geometric, 0);
}

TEST(DrcEngine, GeneratedDesignMostlyClean) {
  DesignParams p;
  p.seed = 21;
  p.rows = 2;
  p.cells_per_row = 6;
  p.routes = 10;
  const Library lib = generate_design(p);
  const DrcResult res = DrcEngine{RuleDeck::standard(p.tech)}.run(
      LayoutSnapshot(lib, lib.top_cells()[0]));
  // Geometric rules must be clean by construction.
  for (const auto& v : res.violations) {
    EXPECT_TRUE(v.rule.find(".D.") != std::string::npos ||
                v.rule.find(".A.") != std::string::npos)
        << v.rule << " at " << to_string(v.marker);
  }
}

TEST(DrcResult, Counting) {
  DrcResult r;
  r.violations = {{"A", {}, 0}, {"B", {}, 0}, {"A", {}, 0}};
  EXPECT_EQ(r.count("A"), 2);
  EXPECT_EQ(r.count("B"), 1);
  EXPECT_EQ(r.count("C"), 0);
  EXPECT_FALSE(r.clean());
  const auto by_rule = r.count_by_rule();
  EXPECT_EQ(by_rule.at("A"), 2);
}

}  // namespace
}  // namespace dfm
