#include "drc/engine.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

constexpr Coord kWide = 150;
constexpr Coord kSpace = 80;

TEST(WideSpacing, NarrowFeaturesAreExempt) {
  Region r;
  r.add(Rect{0, 0, 60, 1000});
  r.add(Rect{120, 0, 180, 1000});  // 60 apart, both narrow
  EXPECT_TRUE(check_wide_spacing(r, kWide, kSpace, "WS").empty());
}

TEST(WideSpacing, WideFeatureTooCloseToNarrowFlags) {
  Region r;
  r.add(Rect{0, 0, 300, 1000});    // wide (>= 150 both ways? 300x1000 yes)
  r.add(Rect{360, 0, 420, 1000});  // 60 < 80 from the wide feature
  const auto v = check_wide_spacing(r, kWide, kSpace, "WS");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].measured, 60);
  EXPECT_TRUE(v[0].marker.overlaps(Rect{300, 0, 360, 1000}));
}

TEST(WideSpacing, ExactWideSpaceIsLegal) {
  Region r;
  r.add(Rect{0, 0, 300, 1000});
  r.add(Rect{380, 0, 440, 1000});  // exactly 80
  EXPECT_TRUE(check_wide_spacing(r, kWide, kSpace, "WS").empty());
}

TEST(WideSpacing, TwoWideFeaturesBothDirections) {
  Region r;
  r.add(Rect{0, 0, 300, 300});
  r.add(Rect{360, 0, 660, 300});  // 60 apart, both wide
  const auto v = check_wide_spacing(r, kWide, kSpace, "WS");
  // Each wide feature reports the other intruding: two findings.
  EXPECT_EQ(v.size(), 2u);
}

TEST(WideSpacing, ThinArmOfWideShapeDoesNotMakeItWideThere) {
  // A wide body with a thin arm: a neighbour near the *arm* keeps plain
  // spacing; only proximity to the wide body triggers the rule.
  Region r;
  r.add(Rect{0, 0, 300, 300});       // wide body
  r.add(Rect{300, 120, 800, 180});   // 60-wide arm, same component
  r.add(Rect{460, 240, 520, 600});   // near the arm only (60 above it)
  const auto near_arm = check_wide_spacing(r, kWide, kSpace, "WS");
  EXPECT_TRUE(near_arm.empty());

  Region r2;
  r2.add(Rect{0, 0, 300, 300});
  r2.add(Rect{0, 360, 60, 700});  // 60 above the wide body
  EXPECT_EQ(check_wide_spacing(r2, kWide, kSpace, "WS").size(), 1u);
}

TEST(WideSpacing, TouchingNeighboursAreSameFeature) {
  Region r;
  r.add(Rect{0, 0, 300, 300});
  r.add(Rect{300, 100, 360, 200});  // abuts: merges, no violation
  EXPECT_TRUE(check_wide_spacing(r, kWide, kSpace, "WS").empty());
}

TEST(WideSpacing, DiagonalProximityUsesChebyshev) {
  Region r;
  r.add(Rect{0, 0, 300, 300});
  r.add(Rect{360, 360, 420, 420});  // Chebyshev gap 60
  EXPECT_EQ(check_wide_spacing(r, kWide, kSpace, "WS").size(), 1u);
  Region r2;
  r2.add(Rect{0, 0, 300, 300});
  r2.add(Rect{390, 390, 450, 450});  // Chebyshev gap 90
  EXPECT_TRUE(check_wide_spacing(r2, kWide, kSpace, "WS").empty());
}

}  // namespace
}  // namespace dfm
