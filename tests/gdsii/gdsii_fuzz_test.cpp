// Failure injection: corrupted GDSII streams must fail with a clean
// exception (or parse to something valid), never crash or hang.
#include "gdsii/gdsii.h"

#include "gdsii/gds_records.h"
#include "gdsii/gds_stream.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace dfm {
namespace {

std::string reference_stream() {
  DesignParams p;
  p.seed = 5;
  p.rows = 1;
  p.cells_per_row = 3;
  p.routes = 4;
  const Library lib = generate_design(p);
  std::stringstream ss;
  write_gdsii(lib, ss);
  return ss.str();
}

class GdsiiFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(GdsiiFuzz, ByteFlipsNeverCrash) {
  const std::string good = reference_stream();
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::size_t> pos(0, good.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);

  for (int trial = 0; trial < 40; ++trial) {
    std::string bad = good;
    const int flips = 1 + trial % 4;
    for (int f = 0; f < flips; ++f) {
      bad[pos(rng)] = static_cast<char>(byte(rng));
    }
    std::stringstream ss(bad);
    try {
      const Library lib = read_gdsii(ss);
      // Parsed despite corruption: must still be internally consistent.
      for (const Cell& c : lib.cells()) {
        for (const CellRef& r : c.refs()) {
          ASSERT_LT(r.cell_index, lib.cell_count());
        }
      }
    } catch (const std::exception&) {
      // Clean rejection is the expected outcome.
    }
  }
}

TEST_P(GdsiiFuzz, TruncationsNeverCrash) {
  const std::string good = reference_stream();
  std::mt19937_64 rng(GetParam() * 31 + 7);
  std::uniform_int_distribution<std::size_t> cut(0, good.size());
  for (int trial = 0; trial < 40; ++trial) {
    std::stringstream ss(good.substr(0, cut(rng)));
    try {
      (void)read_gdsii(ss);
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GdsiiFuzz, ::testing::Range(1u, 6u));

// Walks the record framing ([u16 len BE][u8 rectype][u8 datatype][payload])
// of a valid stream and returns each record's start offset.
std::vector<std::size_t> record_offsets(const std::string& stream) {
  std::vector<std::size_t> offsets;
  std::size_t pos = 0;
  while (pos + 4 <= stream.size()) {
    offsets.push_back(pos);
    const std::size_t len =
        (static_cast<std::size_t>(static_cast<unsigned char>(stream[pos]))
         << 8) |
        static_cast<unsigned char>(stream[pos + 1]);
    if (len < 4) break;  // malformed framing; stop walking
    pos += len;
  }
  return offsets;
}

TEST_P(GdsiiFuzz, CorruptedRecordStreamsFailCleanly) {
  // Seeded corpus of structured corruptions: record length fields blown
  // up, shrunk below the header size, streams cut mid-record and
  // mid-header. Every mutant must either parse to a consistent library
  // or throw — never crash, hang, or leak (the suite runs under the
  // sanitizer builds, see tools/run_tsan.sh).
  const std::string good = reference_stream();
  const std::vector<std::size_t> offsets = record_offsets(good);
  ASSERT_GT(offsets.size(), 8u);

  std::mt19937_64 rng(GetParam() * 977 + 13);
  std::uniform_int_distribution<std::size_t> pick(0, offsets.size() - 1);

  const auto must_not_crash = [](const std::string& bad) {
    std::stringstream ss(bad);
    try {
      const Library lib = read_gdsii(ss);
      for (const Cell& c : lib.cells()) {
        for (const CellRef& r : c.refs()) {
          ASSERT_LT(r.cell_index, lib.cell_count());
        }
      }
    } catch (const std::exception&) {
      // Clean rejection is the expected outcome.
    }
  };

  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t at = offsets[pick(rng)];
    {
      // Length far beyond the remaining stream: reader must not trust it.
      std::string bad = good;
      bad[at] = '\x7f';
      bad[at + 1] = '\xff';
      must_not_crash(bad);
    }
    {
      // Length below the 4-byte header: a record that frames nothing.
      std::string bad = good;
      bad[at] = 0;
      bad[at + 1] = static_cast<char>(trial % 4);
      must_not_crash(bad);
    }
    {
      // Truncation mid-record: keep the header, cut the payload short.
      must_not_crash(good.substr(0, at + 4 + static_cast<std::size_t>(trial % 3)));
    }
    {
      // Truncation mid-header.
      must_not_crash(good.substr(0, at + 1 + static_cast<std::size_t>(trial % 3)));
    }
  }
}

TEST(GdsiiFuzz, AbsurdElementCountsAreRejected) {
  // Structurally valid streams whose payloads declare nonsense sizes: an
  // XY record with an odd byte count and an AREF with zero columns.
  {
    std::stringstream ss;
    {
      gds::RecordWriter w(ss);
      w.write_int16(gds::RecordType::kHeader, {600});
      w.write_int16(gds::RecordType::kBgnLib, std::vector<std::int16_t>(24, 0));
      w.write_ascii(gds::RecordType::kLibName, "lib");
      w.write_real64(gds::RecordType::kUnits, {1e-3, 1e-9});
      w.write_int16(gds::RecordType::kBgnStr, std::vector<std::int16_t>(24, 0));
      w.write_ascii(gds::RecordType::kStrName, "top");
      w.write_empty(gds::RecordType::kBoundary);
      w.write_int16(gds::RecordType::kLayer, {1});
      w.write_int16(gds::RecordType::kDatatype, {0});
      w.write(gds::RecordType::kXy, 3, {0, 0, 0});  // not a multiple of 8
      w.write_empty(gds::RecordType::kEndEl);
      w.write_empty(gds::RecordType::kEndStr);
      w.write_empty(gds::RecordType::kEndLib);
    }
    try {
      (void)read_gdsii(ss);  // tolerated parse is fine; crash is not
    } catch (const std::exception&) {
    }
  }
  {
    std::stringstream ss;
    {
      gds::RecordWriter w(ss);
      w.write_int16(gds::RecordType::kHeader, {600});
      w.write_int16(gds::RecordType::kBgnLib, std::vector<std::int16_t>(24, 0));
      w.write_ascii(gds::RecordType::kLibName, "lib");
      w.write_real64(gds::RecordType::kUnits, {1e-3, 1e-9});
      w.write_int16(gds::RecordType::kBgnStr, std::vector<std::int16_t>(24, 0));
      w.write_ascii(gds::RecordType::kStrName, "top");
      w.write_empty(gds::RecordType::kSref);
      w.write_ascii(gds::RecordType::kSname, "missing");  // dangling ref
      w.write_int32(gds::RecordType::kXy, {0, 0});
      w.write_empty(gds::RecordType::kEndEl);
      w.write_empty(gds::RecordType::kEndStr);
      w.write_empty(gds::RecordType::kEndLib);
    }
    try {
      const Library lib = read_gdsii(ss);
      for (const Cell& c : lib.cells()) {
        for (const CellRef& r : c.refs()) {
          ASSERT_LT(r.cell_index, lib.cell_count());
        }
      }
    } catch (const std::exception&) {
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming (mmap/index) path. The out-of-core reader must hold the same
// bar as the istream parser: a mutant either indexes+decodes to
// consistent geometry or throws a structured error — never crashes, on
// any of index build, whole-layer decode, or window decode (the suite
// runs under the sanitizer builds too).

// Exercises a mutant through the full streaming surface: index build,
// every layer's full decode, and a window straddling the whole extent
// plus a sliver window (the on-demand path a lazy snapshot takes).
void stream_must_not_crash(std::string bytes) {
  try {
    const GdsStreamReader reader = GdsStreamReader::from_bytes(
        std::move(bytes));
    const std::uint32_t top = reader.top_cell();
    for (const LayerKey k : reader.layers()) {
      const Region full = reader.read_layer(top, k);
      const Rect bb = reader.layer_bbox(top, k);
      if (!full.empty()) {
        ASSERT_TRUE(bb.contains(full.bbox()));
        ASSERT_EQ(full.clipped(bb), full);
      }
      (void)reader.read_layer_window(top, k, bb);
      (void)reader.read_layer_window(
          top, k, Rect{bb.lo.x, bb.lo.y, bb.lo.x + 1, bb.lo.y + 1});
    }
  } catch (const std::exception&) {
    // A structured rejection at any stage is the expected outcome.
  }
}

TEST_P(GdsiiFuzz, StreamReaderSurvivesTruncatedTail) {
  // Truncated mmap tail: the file ends mid-record / mid-header, so cell
  // extents recorded by the one-pass index run past the buffer.
  const std::string good = reference_stream();
  std::mt19937_64 rng(GetParam() * 131 + 3);
  std::uniform_int_distribution<std::size_t> cut(0, good.size());
  for (int trial = 0; trial < 40; ++trial) {
    stream_must_not_crash(good.substr(0, cut(rng)));
  }
}

TEST_P(GdsiiFuzz, StreamReaderSurvivesIndexOffsetMismatch) {
  // Length-field corruption shifts the record walk, so the indexed cell
  // offsets and the bytes they point at disagree — exactly the mismatch
  // a window decode would trip over.
  const std::string good = reference_stream();
  const std::vector<std::size_t> offsets = record_offsets(good);
  ASSERT_GT(offsets.size(), 8u);
  std::mt19937_64 rng(GetParam() * 233 + 11);
  std::uniform_int_distribution<std::size_t> pick(0, offsets.size() - 1);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t at = offsets[pick(rng)];
    {
      std::string bad = good;
      bad[at] = '\x7f';  // length far beyond the mapped extent
      bad[at + 1] = '\xff';
      stream_must_not_crash(std::move(bad));
    }
    {
      std::string bad = good;
      bad[at] = 0;  // length below the 4-byte record header
      bad[at + 1] = static_cast<char>(trial % 4);
      stream_must_not_crash(std::move(bad));
    }
  }
}

TEST_P(GdsiiFuzz, StreamWindowsSurviveCorruptRecords) {
  // Payload corruption (record framing intact): windows that straddle
  // the corrupt record must decode or reject cleanly, and clean layers
  // keep the window == clipped-full-layer identity.
  const std::string good = reference_stream();
  const std::vector<std::size_t> offsets = record_offsets(good);
  ASSERT_GT(offsets.size(), 8u);
  std::mt19937_64 rng(GetParam() * 389 + 29);
  std::uniform_int_distribution<std::size_t> pick(0, offsets.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int trial = 0; trial < 30; ++trial) {
    std::string bad = good;
    const std::size_t at = offsets[pick(rng)];
    // Corrupt payload bytes only; leave the 4-byte header alone.
    for (int f = 0; f < 4 && at + 4 + static_cast<std::size_t>(f) <
                                bad.size();
         ++f) {
      bad[at + 4 + static_cast<std::size_t>(f)] =
          static_cast<char>(byte(rng));
    }
    try {
      const GdsStreamReader reader =
          GdsStreamReader::from_bytes(std::move(bad));
      const std::uint32_t top = reader.top_cell();
      for (const LayerKey k : reader.layers()) {
        Region full;
        try {
          full = reader.read_layer(top, k);
        } catch (const std::exception&) {
          continue;  // the corrupt record lives on this layer's path
        }
        const Rect bb = full.bbox();
        if (bb.is_empty()) continue;
        const Coord mx = (bb.lo.x + bb.hi.x) / 2;
        const Coord my = (bb.lo.y + bb.hi.y) / 2;
        for (const Rect& win :
             {Rect{bb.lo.x, bb.lo.y, mx, my}, Rect{mx, my, bb.hi.x, bb.hi.y},
              Rect{bb.lo.x, my, bb.hi.x, bb.hi.y}}) {
          ASSERT_EQ(full.clipped(win), reader.read_layer_window(top, k, win))
              << "window decode diverged on layer " << to_string(k);
        }
      }
    } catch (const std::exception&) {
      // Clean rejection at index build is fine.
    }
  }
}

TEST(GdsiiFuzz, RecordSoupIsRejected) {
  // Structurally valid records in a nonsensical order.
  std::stringstream ss;
  {
    gds::RecordWriter w(ss);
    w.write_empty(gds::RecordType::kEndEl);
    w.write_empty(gds::RecordType::kBoundary);
    w.write_empty(gds::RecordType::kEndLib);
  }
  EXPECT_THROW(read_gdsii(ss), std::runtime_error);
}

}  // namespace
}  // namespace dfm
