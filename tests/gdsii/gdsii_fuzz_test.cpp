// Failure injection: corrupted GDSII streams must fail with a clean
// exception (or parse to something valid), never crash or hang.
#include "gdsii/gdsii.h"

#include "gdsii/gds_records.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace dfm {
namespace {

std::string reference_stream() {
  DesignParams p;
  p.seed = 5;
  p.rows = 1;
  p.cells_per_row = 3;
  p.routes = 4;
  const Library lib = generate_design(p);
  std::stringstream ss;
  write_gdsii(lib, ss);
  return ss.str();
}

class GdsiiFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(GdsiiFuzz, ByteFlipsNeverCrash) {
  const std::string good = reference_stream();
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::size_t> pos(0, good.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);

  for (int trial = 0; trial < 40; ++trial) {
    std::string bad = good;
    const int flips = 1 + trial % 4;
    for (int f = 0; f < flips; ++f) {
      bad[pos(rng)] = static_cast<char>(byte(rng));
    }
    std::stringstream ss(bad);
    try {
      const Library lib = read_gdsii(ss);
      // Parsed despite corruption: must still be internally consistent.
      for (const Cell& c : lib.cells()) {
        for (const CellRef& r : c.refs()) {
          ASSERT_LT(r.cell_index, lib.cell_count());
        }
      }
    } catch (const std::exception&) {
      // Clean rejection is the expected outcome.
    }
  }
}

TEST_P(GdsiiFuzz, TruncationsNeverCrash) {
  const std::string good = reference_stream();
  std::mt19937_64 rng(GetParam() * 31 + 7);
  std::uniform_int_distribution<std::size_t> cut(0, good.size());
  for (int trial = 0; trial < 40; ++trial) {
    std::stringstream ss(good.substr(0, cut(rng)));
    try {
      (void)read_gdsii(ss);
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GdsiiFuzz, ::testing::Range(1u, 6u));

TEST(GdsiiFuzz, RecordSoupIsRejected) {
  // Structurally valid records in a nonsensical order.
  std::stringstream ss;
  {
    gds::RecordWriter w(ss);
    w.write_empty(gds::RecordType::kEndEl);
    w.write_empty(gds::RecordType::kBoundary);
    w.write_empty(gds::RecordType::kEndLib);
  }
  EXPECT_THROW(read_gdsii(ss), std::runtime_error);
}

}  // namespace
}  // namespace dfm
