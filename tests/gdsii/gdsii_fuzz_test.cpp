// Failure injection: corrupted GDSII streams must fail with a clean
// exception (or parse to something valid), never crash or hang.
#include "gdsii/gdsii.h"

#include "gdsii/gds_records.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace dfm {
namespace {

std::string reference_stream() {
  DesignParams p;
  p.seed = 5;
  p.rows = 1;
  p.cells_per_row = 3;
  p.routes = 4;
  const Library lib = generate_design(p);
  std::stringstream ss;
  write_gdsii(lib, ss);
  return ss.str();
}

class GdsiiFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(GdsiiFuzz, ByteFlipsNeverCrash) {
  const std::string good = reference_stream();
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::size_t> pos(0, good.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);

  for (int trial = 0; trial < 40; ++trial) {
    std::string bad = good;
    const int flips = 1 + trial % 4;
    for (int f = 0; f < flips; ++f) {
      bad[pos(rng)] = static_cast<char>(byte(rng));
    }
    std::stringstream ss(bad);
    try {
      const Library lib = read_gdsii(ss);
      // Parsed despite corruption: must still be internally consistent.
      for (const Cell& c : lib.cells()) {
        for (const CellRef& r : c.refs()) {
          ASSERT_LT(r.cell_index, lib.cell_count());
        }
      }
    } catch (const std::exception&) {
      // Clean rejection is the expected outcome.
    }
  }
}

TEST_P(GdsiiFuzz, TruncationsNeverCrash) {
  const std::string good = reference_stream();
  std::mt19937_64 rng(GetParam() * 31 + 7);
  std::uniform_int_distribution<std::size_t> cut(0, good.size());
  for (int trial = 0; trial < 40; ++trial) {
    std::stringstream ss(good.substr(0, cut(rng)));
    try {
      (void)read_gdsii(ss);
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GdsiiFuzz, ::testing::Range(1u, 6u));

// Walks the record framing ([u16 len BE][u8 rectype][u8 datatype][payload])
// of a valid stream and returns each record's start offset.
std::vector<std::size_t> record_offsets(const std::string& stream) {
  std::vector<std::size_t> offsets;
  std::size_t pos = 0;
  while (pos + 4 <= stream.size()) {
    offsets.push_back(pos);
    const std::size_t len =
        (static_cast<std::size_t>(static_cast<unsigned char>(stream[pos]))
         << 8) |
        static_cast<unsigned char>(stream[pos + 1]);
    if (len < 4) break;  // malformed framing; stop walking
    pos += len;
  }
  return offsets;
}

TEST_P(GdsiiFuzz, CorruptedRecordStreamsFailCleanly) {
  // Seeded corpus of structured corruptions: record length fields blown
  // up, shrunk below the header size, streams cut mid-record and
  // mid-header. Every mutant must either parse to a consistent library
  // or throw — never crash, hang, or leak (the suite runs under the
  // sanitizer builds, see tools/run_tsan.sh).
  const std::string good = reference_stream();
  const std::vector<std::size_t> offsets = record_offsets(good);
  ASSERT_GT(offsets.size(), 8u);

  std::mt19937_64 rng(GetParam() * 977 + 13);
  std::uniform_int_distribution<std::size_t> pick(0, offsets.size() - 1);

  const auto must_not_crash = [](const std::string& bad) {
    std::stringstream ss(bad);
    try {
      const Library lib = read_gdsii(ss);
      for (const Cell& c : lib.cells()) {
        for (const CellRef& r : c.refs()) {
          ASSERT_LT(r.cell_index, lib.cell_count());
        }
      }
    } catch (const std::exception&) {
      // Clean rejection is the expected outcome.
    }
  };

  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t at = offsets[pick(rng)];
    {
      // Length far beyond the remaining stream: reader must not trust it.
      std::string bad = good;
      bad[at] = '\x7f';
      bad[at + 1] = '\xff';
      must_not_crash(bad);
    }
    {
      // Length below the 4-byte header: a record that frames nothing.
      std::string bad = good;
      bad[at] = 0;
      bad[at + 1] = static_cast<char>(trial % 4);
      must_not_crash(bad);
    }
    {
      // Truncation mid-record: keep the header, cut the payload short.
      must_not_crash(good.substr(0, at + 4 + static_cast<std::size_t>(trial % 3)));
    }
    {
      // Truncation mid-header.
      must_not_crash(good.substr(0, at + 1 + static_cast<std::size_t>(trial % 3)));
    }
  }
}

TEST(GdsiiFuzz, AbsurdElementCountsAreRejected) {
  // Structurally valid streams whose payloads declare nonsense sizes: an
  // XY record with an odd byte count and an AREF with zero columns.
  {
    std::stringstream ss;
    {
      gds::RecordWriter w(ss);
      w.write_int16(gds::RecordType::kHeader, {600});
      w.write_int16(gds::RecordType::kBgnLib, std::vector<std::int16_t>(24, 0));
      w.write_ascii(gds::RecordType::kLibName, "lib");
      w.write_real64(gds::RecordType::kUnits, {1e-3, 1e-9});
      w.write_int16(gds::RecordType::kBgnStr, std::vector<std::int16_t>(24, 0));
      w.write_ascii(gds::RecordType::kStrName, "top");
      w.write_empty(gds::RecordType::kBoundary);
      w.write_int16(gds::RecordType::kLayer, {1});
      w.write_int16(gds::RecordType::kDatatype, {0});
      w.write(gds::RecordType::kXy, 3, {0, 0, 0});  // not a multiple of 8
      w.write_empty(gds::RecordType::kEndEl);
      w.write_empty(gds::RecordType::kEndStr);
      w.write_empty(gds::RecordType::kEndLib);
    }
    try {
      (void)read_gdsii(ss);  // tolerated parse is fine; crash is not
    } catch (const std::exception&) {
    }
  }
  {
    std::stringstream ss;
    {
      gds::RecordWriter w(ss);
      w.write_int16(gds::RecordType::kHeader, {600});
      w.write_int16(gds::RecordType::kBgnLib, std::vector<std::int16_t>(24, 0));
      w.write_ascii(gds::RecordType::kLibName, "lib");
      w.write_real64(gds::RecordType::kUnits, {1e-3, 1e-9});
      w.write_int16(gds::RecordType::kBgnStr, std::vector<std::int16_t>(24, 0));
      w.write_ascii(gds::RecordType::kStrName, "top");
      w.write_empty(gds::RecordType::kSref);
      w.write_ascii(gds::RecordType::kSname, "missing");  // dangling ref
      w.write_int32(gds::RecordType::kXy, {0, 0});
      w.write_empty(gds::RecordType::kEndEl);
      w.write_empty(gds::RecordType::kEndStr);
      w.write_empty(gds::RecordType::kEndLib);
    }
    try {
      const Library lib = read_gdsii(ss);
      for (const Cell& c : lib.cells()) {
        for (const CellRef& r : c.refs()) {
          ASSERT_LT(r.cell_index, lib.cell_count());
        }
      }
    } catch (const std::exception&) {
    }
  }
}

TEST(GdsiiFuzz, RecordSoupIsRejected) {
  // Structurally valid records in a nonsensical order.
  std::stringstream ss;
  {
    gds::RecordWriter w(ss);
    w.write_empty(gds::RecordType::kEndEl);
    w.write_empty(gds::RecordType::kBoundary);
    w.write_empty(gds::RecordType::kEndLib);
  }
  EXPECT_THROW(read_gdsii(ss), std::runtime_error);
}

}  // namespace
}  // namespace dfm
