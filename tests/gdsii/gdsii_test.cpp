#include "gdsii/gdsii.h"

#include "gdsii/gds_records.h"
#include "gen/generators.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dfm {
namespace {

TEST(GdsReal64, KnownEncodings) {
  // 1.0 encodes as 0x41 0x10 00.. (exponent 65, mantissa 1/16).
  std::uint8_t b[8];
  gds::encode_real64(1.0, b);
  EXPECT_EQ(b[0], 0x41);
  EXPECT_EQ(b[1], 0x10);
  EXPECT_DOUBLE_EQ(gds::decode_real64(b), 1.0);

  gds::encode_real64(0.0, b);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b[i], 0);
  EXPECT_DOUBLE_EQ(gds::decode_real64(b), 0.0);
}

class GdsReal64RoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(GdsReal64RoundTrip, Value) {
  std::uint8_t b[8];
  gds::encode_real64(GetParam(), b);
  EXPECT_NEAR(gds::decode_real64(b), GetParam(),
              std::abs(GetParam()) * 1e-12 + 1e-300);
}

INSTANTIATE_TEST_SUITE_P(Values, GdsReal64RoundTrip,
                         ::testing::Values(1.0, -1.0, 0.001, 1e-9, 1e-6, 2.5,
                                           3.14159265358979, 1e12, -42.0,
                                           1.0 / 3.0));

Library sample_lib() {
  Library lib{"RT"};
  const std::uint32_t leaf = lib.new_cell("leaf");
  lib.cell(leaf).add(layers::kMetal1, Rect{0, 0, 100, 50});
  lib.cell(leaf).add(layers::kMetal1,
                     Polygon{{{0, 0}, {30, 0}, {30, 20}, {10, 20}, {10, 40}, {0, 40}}});
  lib.cell(leaf).add(layers::kVia1, Rect{10, 10, 20, 20});
  lib.cell(leaf).add_text(Text{LayerKey{10, 0}, Point{5, 5}, "net_a"});

  const std::uint32_t top = lib.new_cell("top");
  CellRef sref;
  sref.cell_index = leaf;
  sref.transform = Transform{Orient::kMXR90, {500, -200}};
  lib.cell(top).add_ref(sref);
  CellRef aref;
  aref.cell_index = leaf;
  aref.cols = 3;
  aref.rows = 2;
  aref.col_step = {200, 0};
  aref.row_step = {0, 300};
  aref.transform = Transform{Orient::kR180, {-1000, 800}};
  lib.cell(top).add_ref(aref);
  return lib;
}

TEST(Gdsii, RoundTripPreservesEverything) {
  const Library lib = sample_lib();
  std::stringstream ss;
  write_gdsii(lib, ss);
  const Library back = read_gdsii(ss);

  EXPECT_EQ(back.name(), "RT");
  ASSERT_EQ(back.cell_count(), 2u);
  const Cell& leaf = back.cell("leaf");
  EXPECT_EQ(leaf.shape_count(), 3u);
  ASSERT_EQ(leaf.texts().size(), 1u);
  EXPECT_EQ(leaf.texts()[0].value, "net_a");
  EXPECT_EQ(leaf.texts()[0].position, (Point{5, 5}));

  const Cell& top = back.cell("top");
  ASSERT_EQ(top.refs().size(), 2u);
  EXPECT_EQ(top.refs()[0], lib.cell("top").refs()[0]);
  EXPECT_EQ(top.refs()[1], lib.cell("top").refs()[1]);

  // Flattened geometry identical on every layer.
  for (const LayerKey k : lib.layers()) {
    EXPECT_EQ(back.flatten("top", k), lib.flatten("top", k))
        << "layer " << to_string(k);
  }
}

TEST(Gdsii, RoundTripGeneratedDesign) {
  DesignParams p;
  p.seed = 7;
  p.rows = 3;
  p.cells_per_row = 5;
  p.routes = 10;
  const Library lib = generate_design(p);
  std::stringstream ss;
  write_gdsii(lib, ss);
  const Library back = read_gdsii(ss);
  EXPECT_EQ(back.cell_count(), lib.cell_count());
  const auto tops = lib.top_cells();
  ASSERT_FALSE(tops.empty());
  const std::string top_name = lib.cell(tops[0]).name();
  for (const LayerKey k : lib.layers()) {
    EXPECT_EQ(back.flatten(top_name, k), lib.flatten(top_name, k))
        << "layer " << to_string(k);
  }
}

TEST(Gdsii, PathConversionStraight) {
  const Polygon p = path_to_polygon({{0, 0}, {100, 0}}, 20, false);
  EXPECT_EQ(p.bbox(), (Rect{0, -10, 100, 10}));
  EXPECT_EQ(p.area(), 2000);
}

TEST(Gdsii, PathConversionExtendedEnds) {
  const Polygon p = path_to_polygon({{0, 0}, {100, 0}}, 20, true);
  EXPECT_EQ(p.bbox(), (Rect{-10, -10, 110, 10}));
}

TEST(Gdsii, PathConversionLBend) {
  const Polygon p = path_to_polygon({{0, 0}, {100, 0}, {100, 80}}, 20, false);
  EXPECT_TRUE(p.contains({100, 40}));
  EXPECT_TRUE(p.contains({50, 0}));
  // Area: horizontal 100x20 + vertical 80x20 + joint closure minus overlap.
  const Region r{p};
  EXPECT_EQ(r.area(),
            (Region{Rect{0, -10, 110, 10}} | Region{Rect{90, -10, 110, 80}}).area());
}

TEST(Gdsii, NonManhattanPathRejected) {
  EXPECT_THROW(path_to_polygon({{0, 0}, {50, 50}}, 10, false),
               std::runtime_error);
}

TEST(Gdsii, MalformedStreamRejected) {
  std::stringstream empty;
  EXPECT_THROW(read_gdsii(empty), std::runtime_error);

  std::stringstream garbage("\x00\x06\x01\x02XX");  // BGNLIB-ish then EOF
  EXPECT_THROW(read_gdsii(garbage), std::runtime_error);
}

TEST(Gdsii, UnknownReferencedStructureRejected) {
  // Build a stream with an SREF to a structure that never appears.
  std::stringstream ss;
  {
    gds::RecordWriter w(ss);
    w.write_int16(gds::RecordType::kHeader, {600});
    w.write_int16(gds::RecordType::kBgnLib, std::vector<std::int16_t>(12, 0));
    w.write_ascii(gds::RecordType::kLibName, "X");
    w.write_real64(gds::RecordType::kUnits, {1e-3, 1e-9});
    w.write_int16(gds::RecordType::kBgnStr, std::vector<std::int16_t>(12, 0));
    w.write_ascii(gds::RecordType::kStrName, "top");
    w.write_empty(gds::RecordType::kSref);
    w.write_ascii(gds::RecordType::kSname, "ghost");
    w.write_int32(gds::RecordType::kXy, {0, 0});
    w.write_empty(gds::RecordType::kEndEl);
    w.write_empty(gds::RecordType::kEndStr);
    w.write_empty(gds::RecordType::kEndLib);
  }
  EXPECT_THROW(read_gdsii(ss), std::runtime_error);
}

TEST(Gdsii, FileRoundTrip) {
  const Library lib = sample_lib();
  const std::string path = ::testing::TempDir() + "/dfm_rt.gds";
  write_gdsii_file(lib, path);
  const Library back = read_gdsii_file(path);
  EXPECT_EQ(back.cell_count(), lib.cell_count());
  EXPECT_EQ(back.flatten("top", layers::kMetal1),
            lib.flatten("top", layers::kMetal1));
}

TEST(Gdsii, DeterministicOutput) {
  const Library lib = sample_lib();
  std::stringstream a, b;
  write_gdsii(lib, a);
  write_gdsii(lib, b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace dfm
