#include "gen/generators.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Coord v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(StdCell, HasExpectedLayers) {
  const Cell c = make_stdcell(Tech::standard(), 0, "c0");
  EXPECT_FALSE(c.shapes_on(layers::kMetal1).empty());
  EXPECT_FALSE(c.shapes_on(layers::kPoly).empty());
  EXPECT_FALSE(c.shapes_on(layers::kDiff).empty());
  EXPECT_FALSE(c.shapes_on(layers::kContact).empty());
  EXPECT_EQ(c.local_bbox().height(), Tech::standard().cell_height);
}

TEST(StdCell, VariantsDiffer) {
  const Cell a = make_stdcell(Tech::standard(), 0, "a");
  const Cell b = make_stdcell(Tech::standard(), 3, "b");
  EXPECT_NE(a.local_bbox().width(), b.local_bbox().width());
}

TEST(StdCell, RailsSpanFullWidth) {
  const Tech& t = Tech::standard();
  const Cell c = make_stdcell(t, 2, "c");
  const Region m1 = c.local_region(layers::kMetal1);
  const Coord w = c.local_bbox().width();
  // Bottom rail present across the width.
  for (Coord x = 0; x < w; x += w / 7 + 1) {
    EXPECT_TRUE(m1.contains({x, t.rail_width / 2})) << "x=" << x;
  }
}

TEST(GenerateDesign, DeterministicForSeed) {
  DesignParams p;
  p.seed = 11;
  p.rows = 2;
  p.cells_per_row = 4;
  p.routes = 8;
  const Library a = generate_design(p);
  const Library b = generate_design(p);
  ASSERT_EQ(a.cell_count(), b.cell_count());
  const auto ta = a.top_cells();
  const auto tb = b.top_cells();
  ASSERT_EQ(ta.size(), tb.size());
  for (const LayerKey k : a.layers()) {
    EXPECT_EQ(a.flatten(ta[0], k), b.flatten(tb[0], k));
  }
}

TEST(GenerateDesign, SeedsProduceDifferentDesigns) {
  DesignParams p;
  p.rows = 2;
  p.cells_per_row = 6;
  p.routes = 12;
  p.seed = 1;
  const Library a = generate_design(p);
  p.seed = 2;
  const Library b = generate_design(p);
  const Region ra = a.flatten(a.top_cells()[0], layers::kMetal2);
  const Region rb = b.flatten(b.top_cells()[0], layers::kMetal2);
  EXPECT_NE(ra, rb);
}

TEST(GenerateDesign, HasAllExpectedContent) {
  DesignParams p;
  p.seed = 3;
  p.rows = 3;
  p.cells_per_row = 8;
  p.routes = 20;
  const Library lib = generate_design(p);
  const auto top = lib.top_cells()[0];
  EXPECT_FALSE(lib.flatten(top, layers::kMetal1).empty());
  EXPECT_FALSE(lib.flatten(top, layers::kMetal2).empty());
  EXPECT_FALSE(lib.flatten(top, layers::kVia1).empty());
  EXPECT_FALSE(lib.flatten(top, layers::kPoly).empty());
  EXPECT_GT(lib.flat_shape_count(top), 100u);
}

TEST(Router, WiresDoNotShortEachOther) {
  // Routes on distinct tracks must remain distinct components unless they
  // intentionally join at a bend.
  Cell top{"t"};
  Rng rng(5);
  const Tech& t = Tech::standard();
  route_metal2(top, rng, t, Rect{0, 0, 20000, 20000}, 30, 0.0, 0.0);
  // With bends disabled every route is one horizontal bar plus its two
  // via pads; distinct routes must stay distinct components (no shorts).
  const Region m2 = top.local_region(layers::kMetal2);
  EXPECT_EQ(m2.components().size(), 30u);
}

TEST(ViaField, EnclosureAlwaysCoversVia) {
  Cell c{"v"};
  Rng rng(9);
  const Tech& t = Tech::standard();
  add_via_field(c, rng, t, {0, 0}, 40);
  const Region vias = c.local_region(layers::kVia1);
  const Region m1 = c.local_region(layers::kMetal1);
  const Region m2 = c.local_region(layers::kMetal2);
  EXPECT_EQ(vias.components().size(), 40u);
  EXPECT_TRUE((vias - m1).empty()) << "M1 must cover every via";
  EXPECT_TRUE((vias - m2).empty()) << "M2 must cover every via";
}

TEST(ViaStyles, StylesProduceDistinctEnclosures) {
  const Tech& t = Tech::standard();
  Cell a{"a"}, b{"b"};
  add_via(a, t, {0, 0}, ViaStyle::kSymmetric);
  add_via(b, t, {0, 0}, ViaStyle::kEndOfLineX);
  EXPECT_NE(a.local_region(layers::kMetal1), b.local_region(layers::kMetal1));
}

TEST(Pathologies, InjectionsAreLabelled) {
  Cell c{"p"};
  Rng rng(13);
  const Tech& t = Tech::standard();
  const auto inj =
      inject_pathologies(c, rng, t, Rect{0, 0, 100000, 100000}, 20);
  EXPECT_EQ(inj.size(), 20u);
  for (const Injection& i : inj) {
    EXPECT_FALSE(i.kind.empty());
    EXPECT_FALSE(i.where.is_empty());
    // Geometry actually landed inside the marker.
    const Region m1 = c.local_region(layers::kMetal1).clipped(i.where);
    EXPECT_FALSE(m1.empty()) << i.kind;
  }
}

TEST(Pathologies, SpacingViolationIsActuallyTooClose) {
  Cell c{"p"};
  const Tech& t = Tech::standard();
  const Injection i = inject_spacing_violation(c, t, {0, 0});
  const Region m1 = c.local_region(layers::kMetal1);
  // closed(min_space) must fill the illegal gap => area grows.
  EXPECT_GT(m1.closed(t.m1_space / 2).area(), m1.area());
  EXPECT_EQ(i.kind, "spacing");
}

TEST(Pathologies, OddCycleSpacingIsDrcCleanButDptDirty) {
  Cell c{"p"};
  const Tech& t = Tech::standard();
  inject_odd_cycle(c, t, {0, 0});
  const Region m1 = c.local_region(layers::kMetal1);
  EXPECT_EQ(m1.components().size(), 3u);
  // Pairwise gaps are >= m1_space (DRC-clean)...
  EXPECT_EQ(m1.closed(t.m1_space / 2).components().size(), 3u);
  // ...but below dpt_space (same-mask illegal): closing at dpt_space/2
  // merges them.
  EXPECT_LT(m1.closed(t.dpt_space / 2 + 1).components().size(), 3u);
}

}  // namespace
}  // namespace dfm
