// Property-based checks of the Boolean engine: algebraic identities on
// randomly generated rect soups, plus an exhaustive cross-check against a
// brute-force bitmap rasterization on a small grid.
#include "geometry/region.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace dfm {
namespace {

Region random_region(std::mt19937_64& rng, int n, Coord extent) {
  std::uniform_int_distribution<Coord> pos(0, extent - 1);
  std::uniform_int_distribution<Coord> len(1, extent / 3 + 1);
  Region r;
  for (int i = 0; i < n; ++i) {
    const Coord x = pos(rng), y = pos(rng);
    r.add(Rect{x, y, x + len(rng), y + len(rng)});
  }
  return r;
}

// Rasterizes a region into a bitmap over [0, extent)^2.
std::vector<bool> rasterize(const Region& r, Coord extent) {
  std::vector<bool> img(static_cast<std::size_t>(extent * extent), false);
  for (const Rect& b : r.rects()) {
    for (Coord y = std::max<Coord>(0, b.lo.y); y < std::min(extent, b.hi.y); ++y) {
      for (Coord x = std::max<Coord>(0, b.lo.x); x < std::min(extent, b.hi.x); ++x) {
        img[static_cast<std::size_t>(y * extent + x)] = true;
      }
    }
  }
  return img;
}

class BooleanProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BooleanProperty, AlgebraicIdentities) {
  std::mt19937_64 rng(GetParam());
  const Coord extent = 60;
  const Region a = random_region(rng, 12, extent);
  const Region b = random_region(rng, 12, extent);

  EXPECT_EQ(a | a, a) << "idempotent union";
  EXPECT_EQ(a & a, a) << "idempotent intersection";
  EXPECT_TRUE((a - a).empty()) << "self difference";
  EXPECT_EQ((a | b) & a, a) << "absorption";
  EXPECT_EQ(a | b, b | a) << "commutative union";
  EXPECT_EQ(a & b, b & a) << "commutative intersection";
  EXPECT_EQ((a ^ b), (a | b) - (a & b)) << "xor identity";
  EXPECT_EQ((a - b) | (a & b), a) << "partition of a";
  EXPECT_EQ(a.area() + b.area(), (a | b).area() + (a & b).area())
      << "inclusion-exclusion";
}

TEST_P(BooleanProperty, MatchesBruteForceBitmap) {
  std::mt19937_64 rng(GetParam() * 7919 + 1);
  const Coord extent = 40;
  const Region a = random_region(rng, 10, extent);
  const Region b = random_region(rng, 10, extent);

  const auto ia = rasterize(a, extent);
  const auto ib = rasterize(b, extent);

  const struct {
    BoolOp op;
    bool (*f)(bool, bool);
  } cases[] = {
      {BoolOp::kOr, [](bool x, bool y) { return x || y; }},
      {BoolOp::kAnd, [](bool x, bool y) { return x && y; }},
      {BoolOp::kSub, [](bool x, bool y) { return x && !y; }},
      {BoolOp::kXor, [](bool x, bool y) { return x != y; }},
  };
  for (const auto& c : cases) {
    const Region out = boolean_op(a, b, c.op);
    const auto io = rasterize(out, extent);
    for (Coord y = 0; y < extent; ++y) {
      for (Coord x = 0; x < extent; ++x) {
        const auto idx = static_cast<std::size_t>(y * extent + x);
        ASSERT_EQ(io[idx], c.f(ia[idx], ib[idx]))
            << "op=" << static_cast<int>(c.op) << " at (" << x << "," << y << ")";
      }
    }
  }
}

TEST_P(BooleanProperty, CanonicalRectsNeverOverlap) {
  std::mt19937_64 rng(GetParam() * 104729 + 3);
  const Region a = random_region(rng, 25, 80);
  const auto& rects = a.rects();
  for (std::size_t i = 0; i < rects.size(); ++i) {
    EXPECT_FALSE(rects[i].is_empty());
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      EXPECT_FALSE(rects[i].overlaps(rects[j]));
    }
  }
}

TEST_P(BooleanProperty, ToPolygonsPreservesArea) {
  std::mt19937_64 rng(GetParam() * 13 + 5);
  const Region a = random_region(rng, 15, 50);
  Area total = 0;
  for (const Polygon& p : a.to_polygons()) {
    EXPECT_TRUE(p.is_rectilinear());
    total += p.area();
  }
  EXPECT_EQ(total, a.area());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BooleanProperty,
                         ::testing::Range(1u, 21u));

TEST(BooleanEdgeCases, DisjointAndNested) {
  const Region a{Rect{0, 0, 10, 10}};
  const Region b{Rect{20, 20, 30, 30}};
  EXPECT_EQ((a | b).area(), 200);
  EXPECT_TRUE((a & b).empty());
  EXPECT_EQ(a - b, a);

  const Region inner{Rect{2, 2, 8, 8}};
  EXPECT_EQ(a | inner, a);
  EXPECT_EQ(a & inner, inner);
  EXPECT_EQ((a - inner).area(), 100 - 36);
}

TEST(BooleanEdgeCases, EmptyOperand) {
  const Region a{Rect{0, 0, 10, 10}};
  const Region none;
  EXPECT_EQ(a | none, a);
  EXPECT_TRUE((a & none).empty());
  EXPECT_EQ(a - none, a);
  EXPECT_EQ(a ^ none, a);
  EXPECT_EQ(none - a, none);
}

}  // namespace
}  // namespace dfm
