// Direct tests for covered_at_least and Region::scaled — load-bearing
// pieces of the spacing and critical-area engines that the rest of the
// suite only exercises indirectly.
#include "geometry/region.h"

#include <gtest/gtest.h>

#include <random>

namespace dfm {
namespace {

TEST(CoveredAtLeast, DisjointRectsNeverDoubleCover) {
  const std::vector<Rect> rects = {{0, 0, 10, 10}, {20, 0, 30, 10}};
  EXPECT_TRUE(covered_at_least(rects, 2).empty());
  EXPECT_EQ(covered_at_least(rects, 1).area(), 200);
}

TEST(CoveredAtLeast, OverlapIsExact) {
  const std::vector<Rect> rects = {{0, 0, 10, 10}, {5, 5, 15, 15}};
  const Region twice = covered_at_least(rects, 2);
  EXPECT_EQ(twice, Region(Rect{5, 5, 10, 10}));
  EXPECT_TRUE(covered_at_least(rects, 3).empty());
}

TEST(CoveredAtLeast, TouchingDoesNotCount) {
  // Half-open semantics: shared edges are not double coverage.
  const std::vector<Rect> rects = {{0, 0, 10, 10}, {10, 0, 20, 10}};
  EXPECT_TRUE(covered_at_least(rects, 2).empty());
}

TEST(CoveredAtLeast, MultiplicityCounts) {
  // The same area three times over.
  const std::vector<Rect> rects = {{0, 0, 10, 10}, {0, 0, 10, 10}, {0, 0, 10, 10}};
  EXPECT_EQ(covered_at_least(rects, 3).area(), 100);
  EXPECT_TRUE(covered_at_least(rects, 4).empty());
}

TEST(CoveredAtLeast, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(covered_at_least({}, 1).empty());
  EXPECT_TRUE(covered_at_least({Rect::empty()}, 1).empty());
  EXPECT_TRUE(covered_at_least({Rect{5, 5, 5, 10}}, 1).empty());
}

class CoverageProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CoverageProperty, MatchesBruteForceBitmap) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<Coord> pos(0, 30);
  std::uniform_int_distribution<Coord> len(1, 15);
  std::vector<Rect> rects;
  for (int i = 0; i < 10; ++i) {
    const Coord x = pos(rng), y = pos(rng);
    rects.push_back(Rect{x, y, x + len(rng), y + len(rng)});
  }
  const Coord extent = 50;
  std::vector<int> counts(static_cast<std::size_t>(extent * extent), 0);
  for (const Rect& r : rects) {
    for (Coord y = r.lo.y; y < std::min(extent, r.hi.y); ++y) {
      for (Coord x = r.lo.x; x < std::min(extent, r.hi.x); ++x) {
        ++counts[static_cast<std::size_t>(y * extent + x)];
      }
    }
  }
  for (const int k : {1, 2, 3}) {
    const Region cov = covered_at_least(rects, k);
    for (Coord y = 0; y < extent; ++y) {
      for (Coord x = 0; x < extent; ++x) {
        const bool want =
            counts[static_cast<std::size_t>(y * extent + x)] >= k;
        ASSERT_EQ(cov.contains({x, y}), want)
            << "k=" << k << " at (" << x << "," << y << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageProperty, ::testing::Range(1u, 9u));

TEST(RegionScaled, ScalesAreasQuadratically) {
  Region r;
  r.add(Rect{-5, -5, 5, 5});
  r.add(Rect{20, 0, 30, 10});
  const Region s = r.scaled(3);
  EXPECT_EQ(s.area(), r.area() * 9);
  EXPECT_EQ(s.bbox(), (Rect{-15, -15, 90, 30}));
  EXPECT_EQ(s.components().size(), r.components().size());
}

TEST(RegionScaled, ScaledMorphologyMatchesHalvedRadii) {
  // The 2x-grid trick the DRC engine relies on: bloat by 2d at 2x equals
  // bloat by d at 1x, scaled.
  Region r;
  r.add(Rect{0, 0, 40, 40});
  r.add(Rect{100, 0, 140, 40});
  EXPECT_EQ(r.scaled(2).bloated(14), r.bloated(7).scaled(2));
  EXPECT_EQ(r.scaled(2).shrunk(10), r.shrunk(5).scaled(2));
}

TEST(RegionDistanceCap, CapIsRespected) {
  const Region a{Rect{0, 0, 10, 10}};
  const Region b{Rect{1000, 0, 1010, 10}};
  EXPECT_EQ(region_distance(a, b, 50), 50);
  EXPECT_EQ(region_distance(a, b, 5000), 990);
}

}  // namespace
}  // namespace dfm
