#include "geometry/edge_ops.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

Coord seg_len(const Segment& s) { return s.length(); }

TEST(BoundaryEdges, RectHasFourEdges) {
  const Region r{Rect{0, 0, 10, 20}};
  const auto edges = boundary_edges(r);
  ASSERT_EQ(edges.size(), 4u);
  Coord perimeter = 0;
  for (const auto& e : edges) perimeter += seg_len(e.seg);
  EXPECT_EQ(perimeter, 2 * (10 + 20));
}

TEST(BoundaryEdges, SharedEdgeCancels) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{10, 0, 20, 10});
  const auto edges = boundary_edges(r);
  Coord perimeter = 0;
  for (const auto& e : edges) perimeter += seg_len(e.seg);
  EXPECT_EQ(perimeter, 2 * (20 + 10));  // merged outline only
}

TEST(BoundaryEdges, InteriorSidesAreCorrect) {
  const Region r{Rect{0, 0, 10, 10}};
  for (const auto& e : boundary_edges(r)) {
    if (e.seg.horizontal()) {
      if (e.seg.a.y == 0) { EXPECT_EQ(e.inside, 1); }   // bottom: interior N
      if (e.seg.a.y == 10) { EXPECT_EQ(e.inside, 3); }  // top: interior S
    } else {
      if (e.seg.a.x == 0) { EXPECT_EQ(e.inside, 0); }   // left: interior E
      if (e.seg.a.x == 10) { EXPECT_EQ(e.inside, 2); }  // right: interior W
    }
  }
}

TEST(FacingPairs, SpacingBetweenTwoShapes) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{14, 0, 24, 10});  // horizontal gap of 4
  const auto pairs = facing_pairs(r, 6, /*external=*/true);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].distance, 4);
  EXPECT_EQ(pairs[0].marker, (Rect{10, 0, 14, 10}));
}

TEST(FacingPairs, NoSpacingWhenFarApart) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{30, 0, 40, 10});
  EXPECT_TRUE(facing_pairs(r, 6, true).empty());
}

TEST(FacingPairs, WidthOfThinBar) {
  const Region r{Rect{0, 0, 100, 5}};  // 5 wide bar
  const auto pairs = facing_pairs(r, 8, /*external=*/false);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].distance, 5);
}

TEST(FacingPairs, VerticalGapDetected) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{0, 13, 10, 23});  // vertical gap of 3
  const auto pairs = facing_pairs(r, 5, true);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].distance, 3);
  EXPECT_EQ(pairs[0].marker, (Rect{0, 10, 10, 13}));
}

TEST(FacingPairs, NotchInsideOneShape) {
  // U-shape: the notch creates facing external edges 4 apart.
  const Polygon u{{{0, 0}, {20, 0}, {20, 20}, {12, 20}, {12, 8}, {8, 8}, {8, 20}, {0, 20}}};
  const Region r{u};
  const auto pairs = facing_pairs(r, 6, true);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].distance, 4);
}

TEST(FacingPairs, DiagonalNeighborsDoNotPair) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{12, 12, 22, 22});  // diagonal offset, no projection overlap
  EXPECT_TRUE(facing_pairs(r, 5, true).empty());
}

}  // namespace
}  // namespace dfm
