#include "geometry/region.h"

#include <gtest/gtest.h>

#include <random>

namespace dfm {
namespace {

TEST(Morphology, BloatSingleRect) {
  const Region r{Rect{10, 10, 20, 20}};
  const Region b = r.bloated(5);
  EXPECT_EQ(b.bbox(), (Rect{5, 5, 25, 25}));
  EXPECT_EQ(b.area(), 400);
}

TEST(Morphology, ShrinkSingleRect) {
  const Region r{Rect{0, 0, 20, 20}};
  const Region s = r.shrunk(5);
  EXPECT_EQ(s.bbox(), (Rect{5, 5, 15, 15}));
  EXPECT_EQ(s.area(), 100);
}

TEST(Morphology, ShrinkToNothing) {
  const Region r{Rect{0, 0, 10, 10}};
  EXPECT_TRUE(r.shrunk(5).empty());  // 10-wide rect dies at radius 5
  EXPECT_FALSE(r.shrunk(4).empty());
}

TEST(Morphology, BloatShrinkRoundTripOnRect) {
  const Region r{Rect{0, 0, 30, 40}};
  EXPECT_EQ(r.bloated(7).shrunk(7), r);
  EXPECT_EQ(r.shrunk(7).bloated(7), r);
}

TEST(Morphology, BloatMergesNearbyShapes) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{16, 0, 26, 10});  // gap of 6
  EXPECT_EQ(r.bloated(3).components().size(), 1u);  // 3+3 bridges the gap
  EXPECT_EQ(r.bloated(2).components().size(), 2u);
}

TEST(Morphology, ClosingFillsNarrowGap) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{14, 0, 24, 10});  // 4 wide gap
  const Region closed = r.closed(4);
  EXPECT_TRUE(closed.contains({12, 5}));
  EXPECT_EQ(closed.components().size(), 1u);
  // Closing never removes original material.
  EXPECT_TRUE((r - closed).empty());
}

TEST(Morphology, OpeningRemovesThinSliver) {
  Region r;
  r.add(Rect{0, 0, 40, 20});   // fat body
  r.add(Rect{40, 8, 60, 12});  // 4-wide whisker
  const Region opened = r.opened(4);
  EXPECT_FALSE(opened.contains({50, 10}));  // whisker gone
  EXPECT_TRUE(opened.contains({20, 10}));   // body survives
  // Opening never adds material.
  EXPECT_TRUE((opened - r).empty());
}

TEST(Morphology, LShapeInnerCornerShrink) {
  const Polygon l{{{0, 0}, {30, 0}, {30, 15}, {15, 15}, {15, 30}, {0, 30}}};
  const Region r{l};
  const Region s = r.shrunk(5);
  // Interior points far from any boundary stay.
  EXPECT_TRUE(s.contains({7, 7}));
  // Points within 5 of the inner corner region are eaten.
  EXPECT_FALSE(s.contains({17, 17}));
  EXPECT_FALSE(s.contains({1, 1}));
}

TEST(Morphology, ZeroAndNegativeRadii) {
  const Region r{Rect{0, 0, 10, 10}};
  EXPECT_EQ(r.bloated(0), r);
  EXPECT_EQ(r.shrunk(0), r);
  EXPECT_EQ(r.bloated(-2), r.shrunk(2));
  EXPECT_EQ(r.shrunk(-2), r.bloated(2));
}

class MorphologyProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(MorphologyProperty, ContainmentChain) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<Coord> pos(0, 99);
  std::uniform_int_distribution<Coord> len(5, 30);
  Region r;
  for (int i = 0; i < 10; ++i) {
    const Coord x = pos(rng), y = pos(rng);
    r.add(Rect{x, y, x + len(rng), y + len(rng)});
  }
  const Coord d = 3;
  const Region shr = r.shrunk(d);
  const Region blo = r.bloated(d);
  const Region op = r.opened(d);
  const Region cl = r.closed(d);
  // shrink ⊆ opened ⊆ r ⊆ closed ⊆ bloat
  EXPECT_TRUE((shr - op).empty());
  EXPECT_TRUE((op - r).empty());
  EXPECT_TRUE((r - cl).empty());
  EXPECT_TRUE((cl - blo).empty());
  // Area monotone in radius.
  EXPECT_LE(r.bloated(2).area(), r.bloated(4).area());
  EXPECT_GE(r.shrunk(2).area(), r.shrunk(4).area());
}

TEST_P(MorphologyProperty, BloatThenShrinkRecoversFatRegions) {
  std::mt19937_64 rng(GetParam() + 1000);
  std::uniform_int_distribution<Coord> pos(0, 200);
  Region r;
  for (int i = 0; i < 6; ++i) {
    const Coord x = pos(rng), y = pos(rng);
    r.add(Rect{x, y, x + 40, y + 40});  // all shapes fat vs radius
  }
  // closing ⊇ r always; for isolated fat shapes spaced > 2d the identity
  // closed(d) == r holds only when no gaps under 2d exist, so just check
  // the containment direction that is universally true.
  EXPECT_TRUE((r - r.closed(6)).empty());
  EXPECT_TRUE((r.opened(6) - r).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MorphologyProperty, ::testing::Range(1u, 13u));

}  // namespace
}  // namespace dfm
