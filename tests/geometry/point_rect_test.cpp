#include "geometry/point.h"
#include "geometry/rect.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

TEST(Point, Arithmetic) {
  const Point a{3, 4};
  const Point b{-1, 2};
  EXPECT_EQ(a + b, (Point{2, 6}));
  EXPECT_EQ(a - b, (Point{4, 2}));
  EXPECT_EQ(-a, (Point{-3, -4}));
  EXPECT_EQ(a * 2, (Point{6, 8}));
}

TEST(Point, Distances) {
  EXPECT_EQ(chebyshev({0, 0}, {3, -4}), 4);
  EXPECT_EQ(manhattan({0, 0}, {3, -4}), 7);
  EXPECT_EQ(chebyshev({5, 5}, {5, 5}), 0);
}

TEST(Point, Ordering) {
  EXPECT_LT((Point{1, 5}), (Point{2, 0}));
  EXPECT_LT((Point{1, 0}), (Point{1, 5}));
}

TEST(Rect, BasicsAndEmpty) {
  const Rect r{0, 0, 10, 5};
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 5);
  EXPECT_EQ(r.area(), 50);
  EXPECT_FALSE(r.is_empty());
  EXPECT_TRUE(Rect::empty().is_empty());
  EXPECT_TRUE((Rect{5, 0, 5, 10}).is_empty());
  EXPECT_EQ(Rect::empty().area(), 0);
}

TEST(Rect, ContainsAndOverlap) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{10, 10}));
  EXPECT_FALSE(r.contains(Point{11, 5}));
  EXPECT_TRUE(r.contains(Rect{2, 2, 8, 8}));
  EXPECT_FALSE(r.contains(Rect{2, 2, 12, 8}));
  EXPECT_TRUE(r.overlaps(Rect{9, 9, 20, 20}));
  EXPECT_FALSE(r.overlaps(Rect{10, 0, 20, 10}));  // edge contact only
  EXPECT_TRUE(r.touches(Rect{10, 0, 20, 10}));
  EXPECT_TRUE(r.touches(Rect{10, 10, 20, 20}));  // corner contact
  EXPECT_FALSE(r.touches(Rect{11, 11, 20, 20}));
}

TEST(Rect, IntersectJoin) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 15, 15};
  EXPECT_EQ(a.intersect(b), (Rect{5, 5, 10, 10}));
  EXPECT_EQ(a.join(b), (Rect{0, 0, 15, 15}));
  EXPECT_EQ(a.join(Rect::empty()), a);
  EXPECT_EQ(Rect::empty().join(a), a);
  EXPECT_TRUE(a.intersect(Rect{20, 20, 30, 30}).is_empty());
}

TEST(Rect, Distance) {
  const Rect a{0, 0, 10, 10};
  EXPECT_EQ(a.distance(Rect{15, 0, 20, 10}), 5);
  EXPECT_EQ(a.distance(Rect{0, 12, 10, 20}), 2);
  EXPECT_EQ(a.distance(Rect{13, 14, 20, 20}), 4);  // Chebyshev corner gap
  EXPECT_EQ(a.distance(Rect{5, 5, 20, 20}), 0);
}

TEST(Rect, ExpandTranslate) {
  const Rect a{0, 0, 10, 10};
  EXPECT_EQ(a.expanded(3), (Rect{-3, -3, 13, 13}));
  EXPECT_EQ(a.expanded(-3), (Rect{3, 3, 7, 7}));
  EXPECT_EQ(a.translated({5, -5}), (Rect{5, -5, 15, 5}));
}

TEST(Rect, BoundingBox) {
  EXPECT_TRUE(bounding_box({}).is_empty());
  EXPECT_EQ(bounding_box({Rect{0, 0, 1, 1}, Rect{5, -2, 9, 3}}),
            (Rect{0, -2, 9, 3}));
}

TEST(Area, LargeExtentsDoNotOverflow) {
  // 2^40 nm on a side: area exceeds int64 but fits Area (__int128).
  const Coord big = Coord{1} << 40;
  const Rect r{0, 0, big, big};
  const Area expect = static_cast<Area>(big) * big;
  EXPECT_EQ(r.area(), expect);
}

}  // namespace
}  // namespace dfm
