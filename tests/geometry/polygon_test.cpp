#include "geometry/polygon.h"
#include "geometry/region.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

Polygon lshape() {
  // L-shaped polygon: 10x10 square minus its upper-right 5x5 quadrant.
  return Polygon{{{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}}};
}

TEST(Polygon, RectConstruction) {
  const Polygon p{Rect{0, 0, 4, 3}};
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(p.is_rect());
  EXPECT_TRUE(p.is_rectilinear());
  EXPECT_EQ(p.area(), 12);
  EXPECT_EQ(p.bbox(), (Rect{0, 0, 4, 3}));
}

TEST(Polygon, EmptyAndDegenerate) {
  EXPECT_TRUE(Polygon{}.empty());
  EXPECT_TRUE(Polygon{Rect::empty()}.empty());
  // Fewer than 3 distinct points collapses to empty.
  EXPECT_TRUE((Polygon{{{0, 0}, {1, 0}, {1, 0}}}).empty());
}

TEST(Polygon, SignedAreaAndWinding) {
  const Polygon p = lshape();
  EXPECT_EQ(p.area(), 75);
  EXPECT_GT(p.signed_area(), 0);  // normalized to CCW
  // Feed in clockwise order; normalize must flip to CCW.
  Polygon cw{{{0, 10}, {5, 10}, {5, 5}, {10, 5}, {10, 0}, {0, 0}}};
  EXPECT_GT(cw.signed_area(), 0);
  EXPECT_EQ(cw, p);
}

TEST(Polygon, NormalizeDropsCollinearAndDuplicates) {
  Polygon p{{{0, 0}, {5, 0}, {10, 0}, {10, 0}, {10, 10}, {0, 10}}};
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(p.is_rect());
}

TEST(Polygon, ContainsInteriorBoundaryExterior) {
  const Polygon p = lshape();
  EXPECT_TRUE(p.contains({2, 2}));    // interior
  EXPECT_TRUE(p.contains({0, 0}));    // vertex
  EXPECT_TRUE(p.contains({10, 3}));   // boundary edge
  EXPECT_TRUE(p.contains({5, 7}));    // boundary of the notch
  EXPECT_FALSE(p.contains({7, 7}));   // in the cut-out quadrant
  EXPECT_FALSE(p.contains({11, 5}));  // outside
}

TEST(Polygon, TransformPreservesArea) {
  const Polygon p = lshape();
  for (Orient o : kAllOrients) {
    const Polygon q = p.transformed(Transform{o, {100, -50}});
    EXPECT_EQ(q.area(), p.area());
    EXPECT_TRUE(q.is_rectilinear());
  }
}

TEST(Polygon, TransformRoundTrip) {
  const Polygon p = lshape();
  const Transform t{Orient::kMXR90, {42, 17}};
  EXPECT_EQ(p.transformed(t).transformed(t.inverted()), p);
}

TEST(Polygon, EdgesAlternateAndClose) {
  const Polygon p = lshape();
  const auto es = edges_of(p);
  ASSERT_EQ(es.size(), 6u);
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_TRUE(es[i].horizontal() || es[i].vertical());
    EXPECT_EQ(es[i].b, es[(i + 1) % es.size()].a);  // chain closes
    // Alternation.
    EXPECT_NE(es[i].horizontal(), es[(i + 1) % es.size()].horizontal());
  }
}

TEST(Polygon, DecomposeCoversExactArea) {
  const Polygon p = lshape();
  const std::vector<Rect> rects = decompose(p);
  Area total = 0;
  for (const Rect& r : rects) total += r.area();
  EXPECT_EQ(total, p.area());
  // No pairwise overlap.
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      EXPECT_FALSE(rects[i].overlaps(rects[j]));
    }
  }
}

TEST(Polygon, DecomposeRectFastPath) {
  const Polygon p{Rect{3, 4, 9, 8}};
  const auto rects = decompose(p);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (Rect{3, 4, 9, 8}));
}

// Staircase polygons of increasing step count: decomposition must cover
// the exact area with non-overlapping rects.
class StaircaseDecompose : public ::testing::TestWithParam<int> {};

TEST_P(StaircaseDecompose, ExactCover) {
  const int steps = GetParam();
  std::vector<Point> pts;
  pts.push_back({0, 0});
  pts.push_back({10 * steps, 0});
  for (int i = steps; i >= 1; --i) {
    pts.push_back({10 * i, 10 * (steps - i + 1)});
    pts.push_back({10 * (i - 1), 10 * (steps - i + 1)});
  }
  const Polygon p{pts};
  ASSERT_FALSE(p.empty());
  const auto rects = decompose(p);
  Area total = 0;
  for (const Rect& r : rects) total += r.area();
  EXPECT_EQ(total, p.area());
}

INSTANTIATE_TEST_SUITE_P(Sizes, StaircaseDecompose,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace dfm
