#include "geometry/region.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

TEST(Region, EmptyBehaviour) {
  Region r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.area(), 0);
  EXPECT_EQ(r.rect_count(), 0u);
  EXPECT_TRUE(r.bbox().is_empty());
  EXPECT_TRUE(r.to_polygons().empty());
}

TEST(Region, SingleRect) {
  Region r{Rect{0, 0, 10, 10}};
  EXPECT_EQ(r.area(), 100);
  EXPECT_EQ(r.rect_count(), 1u);
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({9, 9}));
  EXPECT_FALSE(r.contains({10, 10}));  // half-open
}

TEST(Region, OverlappingRectsMerge) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{5, 0, 15, 10});
  EXPECT_EQ(r.area(), 150);
  EXPECT_EQ(r.rect_count(), 1u);  // same y-band merges into one rect
}

TEST(Region, TouchingRectsMergeIntoOneComponent) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{10, 0, 20, 10});  // shares an edge
  EXPECT_EQ(r.area(), 200);
  EXPECT_EQ(r.components().size(), 1u);
}

TEST(Region, CornerContactDoesNotConnect) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{10, 10, 20, 20});
  EXPECT_EQ(r.components().size(), 2u);
}

TEST(Region, CanonicalFormIsUnique) {
  // Build the same 20x10 area two different ways.
  Region a;
  a.add(Rect{0, 0, 10, 10});
  a.add(Rect{10, 0, 20, 10});
  Region b;
  b.add(Rect{0, 0, 20, 5});
  b.add(Rect{0, 5, 20, 10});
  b.add(Rect{3, 2, 17, 9});  // fully covered, must vanish
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.rect_count(), 1u);
}

TEST(Region, PolygonAddRoundTrip) {
  const Polygon l{{{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}}};
  Region r{l};
  EXPECT_EQ(r.area(), l.area());
  const auto polys = r.to_polygons();
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_EQ(polys[0], l);
}

TEST(Region, ToPolygonsMergesTouchingShapes) {
  Region r;
  r.add(Rect{0, 0, 10, 10});
  r.add(Rect{10, 0, 20, 10});
  const auto polys = r.to_polygons();
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_EQ(polys[0], Polygon(Rect{0, 0, 20, 10}));
}

TEST(Region, ToPolygonsSeparateIslands) {
  Region r;
  r.add(Rect{0, 0, 5, 5});
  r.add(Rect{20, 20, 25, 25});
  const auto polys = r.to_polygons();
  EXPECT_EQ(polys.size(), 2u);
}

TEST(Region, DonutFallsBackToHoleFreeCover) {
  // 30x30 frame with a 10x10 hole in the middle.
  Region r{Rect{0, 0, 30, 30}};
  r = r - Region{Rect{10, 10, 20, 20}};
  EXPECT_EQ(r.area(), 900 - 100);
  Area total = 0;
  for (const Polygon& p : r.to_polygons()) {
    EXPECT_FALSE(p.empty());
    total += p.area();
  }
  EXPECT_EQ(total, r.area());
}

TEST(Region, ClipKeepsInsideOnly) {
  Region r{Rect{0, 0, 100, 100}};
  const Region c = r.clipped(Rect{50, 50, 200, 200});
  EXPECT_EQ(c.area(), 2500);
  EXPECT_EQ(c.bbox(), (Rect{50, 50, 100, 100}));
}

TEST(Region, TranslateAndTransform) {
  Region r{Rect{0, 0, 10, 20}};
  EXPECT_EQ(r.translated({5, 5}).bbox(), (Rect{5, 5, 15, 25}));
  const Region rot = r.transformed(Transform{Orient::kR90, {0, 0}});
  EXPECT_EQ(rot.area(), r.area());
  EXPECT_EQ(rot.bbox(), (Rect{-20, 0, 0, 10}));
}

TEST(Region, ComponentsOfGrid) {
  Region r;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      r.add(Rect{i * 20, j * 20, i * 20 + 10, j * 20 + 10});
    }
  }
  EXPECT_EQ(r.components().size(), 12u);
  Area total = 0;
  for (const Region& c : r.components()) total += c.area();
  EXPECT_EQ(total, r.area());
}

TEST(Region, ComplexUnionContour) {
  // A plus-sign shape from two crossing bars.
  Region r;
  r.add(Rect{0, 10, 30, 20});
  r.add(Rect{10, 0, 20, 30});
  EXPECT_EQ(r.area(), 300 + 300 - 100);
  const auto polys = r.to_polygons();
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_EQ(polys[0].size(), 12u);  // plus sign has 12 corners
  EXPECT_EQ(polys[0].area(), r.area());
}

}  // namespace
}  // namespace dfm
