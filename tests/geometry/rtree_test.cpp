#include "geometry/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace dfm {
namespace {

TEST(RTree, EmptyTree) {
  RTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.query(Rect{0, 0, 100, 100}).empty());
}

TEST(RTree, SingleBox) {
  RTree t({Rect{10, 10, 20, 20}});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.query(Rect{0, 0, 15, 15}).size(), 1u);
  EXPECT_EQ(t.query(Rect{20, 20, 30, 30}).size(), 1u);  // closed touch
  EXPECT_TRUE(t.query(Rect{21, 21, 30, 30}).empty());
}

class RTreeProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RTreeProperty, QueryMatchesBruteForce) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<Coord> pos(0, 1000);
  std::uniform_int_distribution<Coord> len(1, 80);

  std::vector<Rect> boxes;
  for (int i = 0; i < 300; ++i) {
    const Coord x = pos(rng), y = pos(rng);
    boxes.push_back(Rect{x, y, x + len(rng), y + len(rng)});
  }
  const RTree tree(boxes);
  ASSERT_EQ(tree.size(), boxes.size());

  for (int q = 0; q < 50; ++q) {
    const Coord x = pos(rng), y = pos(rng);
    const Rect window{x, y, x + len(rng), y + len(rng)};
    auto got = tree.query(window);
    std::sort(got.begin(), got.end());
    std::vector<std::uint32_t> want;
    for (std::uint32_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].touches(window)) want.push_back(i);
    }
    EXPECT_EQ(got, want) << "window " << to_string(window);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeProperty, ::testing::Range(1u, 9u));

TEST(RTree, LargeBulkLoad) {
  std::vector<Rect> boxes;
  for (Coord i = 0; i < 10000; ++i) {
    const Coord x = (i % 100) * 10;
    const Coord y = (i / 100) * 10;
    boxes.push_back(Rect{x, y, x + 8, y + 8});
  }
  const RTree tree(boxes);
  // Query one full row: boxes touch window when expanded query spans row.
  const auto row = tree.query(Rect{0, 500, 1000, 508});
  EXPECT_EQ(row.size(), 100u);
}

}  // namespace
}  // namespace dfm
