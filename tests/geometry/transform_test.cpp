#include "geometry/transform.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

TEST(Orient, RotationsActCorrectly) {
  const Point p{2, 1};
  EXPECT_EQ(apply_orient(Orient::kR0, p), (Point{2, 1}));
  EXPECT_EQ(apply_orient(Orient::kR90, p), (Point{-1, 2}));
  EXPECT_EQ(apply_orient(Orient::kR180, p), (Point{-2, -1}));
  EXPECT_EQ(apply_orient(Orient::kR270, p), (Point{1, -2}));
  EXPECT_EQ(apply_orient(Orient::kMX, p), (Point{2, -1}));
  EXPECT_EQ(apply_orient(Orient::kMXR180, p), (Point{-2, 1}));
}

TEST(Orient, GroupClosure) {
  // Composition of any two orientations is again one of the eight.
  for (Orient a : kAllOrients) {
    for (Orient b : kAllOrients) {
      const Orient c = compose(a, b);
      const Point probe{3, 7};
      EXPECT_EQ(apply_orient(c, probe), apply_orient(a, apply_orient(b, probe)));
    }
  }
}

TEST(Orient, InverseRoundTrip) {
  for (Orient o : kAllOrients) {
    EXPECT_EQ(compose(inverse(o), o), Orient::kR0);
    EXPECT_EQ(compose(o, inverse(o)), Orient::kR0);
  }
}

TEST(Transform, ApplyAndInvertRoundTrip) {
  for (Orient o : kAllOrients) {
    const Transform t{o, Point{13, -7}};
    const Transform inv = t.inverted();
    for (const Point p : {Point{0, 0}, Point{5, 9}, Point{-3, 2}}) {
      EXPECT_EQ(inv.apply(t.apply(p)), p);
      EXPECT_EQ(t.apply(inv.apply(p)), p);
    }
  }
}

TEST(Transform, CompositionMatchesSequentialApplication) {
  const Transform a{Orient::kR90, Point{10, 0}};
  const Transform b{Orient::kMX, Point{-4, 6}};
  const Transform ab = a.then_after(b);
  for (const Point p : {Point{1, 2}, Point{-5, 3}, Point{0, 0}}) {
    EXPECT_EQ(ab.apply(p), a.apply(b.apply(p)));
  }
}

TEST(Transform, RectMapsToNormalizedRect) {
  const Transform t{Orient::kR90, Point{0, 0}};
  const Rect r{1, 2, 4, 6};
  const Rect m = t.apply(r);
  EXPECT_EQ(m, (Rect{-6, 1, -2, 4}));
  EXPECT_EQ(m.area(), r.area());
}

}  // namespace
}  // namespace dfm
