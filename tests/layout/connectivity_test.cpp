#include "layout/connectivity.h"

#include "core/snapshot.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

LayerMap stack_map(const Cell& c) {
  LayerMap m;
  for (const LayerKey k : {layers::kMetal1, layers::kVia1, layers::kMetal2}) {
    m.emplace(k, c.local_region(k));
  }
  return m;
}

TEST(Connectivity, TwoMetalsJoinedByVia) {
  Cell c{"c"};
  c.add(layers::kMetal1, Rect{0, 0, 1000, 60});
  c.add(layers::kMetal2, Rect{0, -500, 60, 500});
  c.add(layers::kVia1, Rect{5, 5, 55, 55});  // overlaps both
  const Netlist nets = extract_nets(LayoutSnapshot(stack_map(c)), standard_stack());
  ASSERT_EQ(nets.size(), 1u);
  EXPECT_NE(nets.nets[0].on(layers::kMetal1), nullptr);
  EXPECT_NE(nets.nets[0].on(layers::kMetal2), nullptr);
  EXPECT_NE(nets.nets[0].on(layers::kVia1), nullptr);
}

TEST(Connectivity, CrossingWithoutViaStaysSeparate) {
  Cell c{"c"};
  c.add(layers::kMetal1, Rect{0, 0, 1000, 60});
  c.add(layers::kMetal2, Rect{0, -500, 60, 500});  // crosses above, no via
  const Netlist nets = extract_nets(LayoutSnapshot(stack_map(c)), standard_stack());
  EXPECT_EQ(nets.size(), 2u);
}

TEST(Connectivity, ViaChainMergesManyShapes) {
  Cell c{"c"};
  // M1 bus, three stubs on M2, all strapped through vias onto the bus.
  c.add(layers::kMetal1, Rect{0, 0, 3000, 60});
  for (int i = 0; i < 3; ++i) {
    const Coord x = 200 + i * 1000;
    c.add(layers::kMetal2, Rect{x, -400, x + 60, 400});
    c.add(layers::kVia1, Rect{x + 5, 5, x + 55, 55});
  }
  const Netlist nets = extract_nets(LayoutSnapshot(stack_map(c)), standard_stack());
  ASSERT_EQ(nets.size(), 1u);
  EXPECT_EQ(nets.nets[0].on(layers::kMetal2)->components().size(), 3u);
}

TEST(Connectivity, SeparateNetsStaySeparate) {
  Cell c{"c"};
  for (int i = 0; i < 4; ++i) {
    const Coord y = i * 300;
    c.add(layers::kMetal1, Rect{0, y, 800, y + 60});
    c.add(layers::kMetal2, Rect{100, y, 160, y + 60});
    c.add(layers::kVia1, Rect{105, y + 5, 155, y + 55});
  }
  EXPECT_EQ(extract_nets(LayoutSnapshot(stack_map(c)), standard_stack()).size(), 4u);
}

TEST(Connectivity, GeneratedViaFieldNetCount) {
  Cell c{"v"};
  Rng rng(3);
  add_via_field(c, rng, Tech::standard(), {0, 0}, 30);
  // Every via has its own pads: 30 separate nets.
  EXPECT_EQ(extract_nets(LayoutSnapshot(stack_map(c)), standard_stack()).size(), 30u);
}

TEST(FloatingCuts, FullyLandedViaIsClean) {
  Cell c{"c"};
  add_via(c, Tech::standard(), {0, 0}, ViaStyle::kSymmetric);
  EXPECT_TRUE(find_floating_cuts(LayoutSnapshot(stack_map(c)), standard_stack()).empty());
}

TEST(FloatingCuts, ViaOffThePadIsFlagged) {
  Cell c{"c"};
  c.add(layers::kMetal1, Rect{0, 0, 100, 100});
  c.add(layers::kMetal2, Rect{0, 0, 100, 100});
  c.add(layers::kVia1, Rect{80, 25, 130, 75});  // hangs off both pads
  const auto floating = find_floating_cuts(LayoutSnapshot(stack_map(c)), standard_stack());
  ASSERT_EQ(floating.size(), 1u);
  EXPECT_TRUE(floating[0].missing_below);
  EXPECT_TRUE(floating[0].missing_above);
}

TEST(FloatingCuts, ViaMissingOnlyTopMetal) {
  Cell c{"c"};
  c.add(layers::kMetal1, Rect{0, 0, 200, 200});
  c.add(layers::kVia1, Rect{50, 50, 100, 100});  // no M2 at all
  const auto floating = find_floating_cuts(LayoutSnapshot(stack_map(c)), standard_stack());
  ASSERT_EQ(floating.size(), 1u);
  EXPECT_FALSE(floating[0].missing_below);
  EXPECT_TRUE(floating[0].missing_above);
}

TEST(Net, AreaAccounting) {
  Cell c{"c"};
  c.add(layers::kMetal1, Rect{0, 0, 100, 100});
  c.add(layers::kMetal2, Rect{0, 0, 50, 50});
  c.add(layers::kVia1, Rect{10, 10, 40, 40});
  const Netlist nets = extract_nets(LayoutSnapshot(stack_map(c)), standard_stack());
  ASSERT_EQ(nets.size(), 1u);
  EXPECT_EQ(nets.nets[0].total_area(), 10000 + 2500 + 900);
  EXPECT_EQ(nets.nets[0].on(LayerKey{99, 0}), nullptr);
}

}  // namespace
}  // namespace dfm
