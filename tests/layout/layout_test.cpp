#include "layout/library.h"

#include "layout/density.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

Library two_level_lib() {
  Library lib{"TEST"};
  const std::uint32_t leaf = lib.new_cell("leaf");
  lib.cell(leaf).add(layers::kMetal1, Rect{0, 0, 10, 10});
  const std::uint32_t top = lib.new_cell("top");
  CellRef r1;
  r1.cell_index = leaf;
  r1.transform = Transform{Orient::kR0, {0, 0}};
  lib.cell(top).add_ref(r1);
  CellRef r2;
  r2.cell_index = leaf;
  r2.transform = Transform{Orient::kR0, {100, 0}};
  lib.cell(top).add_ref(r2);
  return lib;
}

TEST(Cell, ShapeBookkeeping) {
  Cell c{"c"};
  c.add(layers::kMetal1, Rect{0, 0, 10, 10});
  c.add(layers::kMetal2, Rect{0, 0, 5, 5});
  c.add(layers::kMetal1, Rect::empty());  // ignored
  EXPECT_EQ(c.shape_count(), 2u);
  EXPECT_EQ(c.layers().size(), 2u);
  EXPECT_EQ(c.shapes_on(layers::kMetal1).size(), 1u);
  EXPECT_TRUE(c.shapes_on(layers::kVia1).empty());
  EXPECT_EQ(c.local_bbox(), (Rect{0, 0, 10, 10}));
  EXPECT_EQ(c.local_region(layers::kMetal1).area(), 100);
}

TEST(Library, CellNamesAreUnique) {
  Library lib{"L"};
  lib.new_cell("a");
  EXPECT_THROW(lib.new_cell("a"), std::invalid_argument);
  EXPECT_THROW(lib.index_of("missing"), std::out_of_range);
  EXPECT_TRUE(lib.has_cell("a"));
  EXPECT_FALSE(lib.has_cell("b"));
}

TEST(Library, TopCellDetection) {
  const Library lib = two_level_lib();
  const auto tops = lib.top_cells();
  ASSERT_EQ(tops.size(), 1u);
  EXPECT_EQ(lib.cell(tops[0]).name(), "top");
}

TEST(Library, FlattenTwoInstances) {
  const Library lib = two_level_lib();
  const Region flat = lib.flatten("top", layers::kMetal1);
  EXPECT_EQ(flat.area(), 200);
  EXPECT_TRUE(flat.contains({5, 5}));
  EXPECT_TRUE(flat.contains({105, 5}));
  EXPECT_FALSE(flat.contains({50, 5}));
}

TEST(Library, FlattenRespectsOrientation) {
  Library lib{"L"};
  const std::uint32_t leaf = lib.new_cell("leaf");
  lib.cell(leaf).add(layers::kMetal1, Rect{0, 0, 20, 10});
  const std::uint32_t top = lib.new_cell("top");
  CellRef ref;
  ref.cell_index = leaf;
  ref.transform = Transform{Orient::kR90, {0, 0}};
  lib.cell(top).add_ref(ref);
  const Region flat = lib.flatten(top, layers::kMetal1);
  EXPECT_EQ(flat.bbox(), (Rect{-10, 0, 0, 20}));
}

TEST(Library, FlattenArrayRef) {
  Library lib{"L"};
  const std::uint32_t leaf = lib.new_cell("leaf");
  lib.cell(leaf).add(layers::kMetal1, Rect{0, 0, 10, 10});
  const std::uint32_t top = lib.new_cell("top");
  CellRef ref;
  ref.cell_index = leaf;
  ref.cols = 4;
  ref.rows = 3;
  ref.col_step = {50, 0};
  ref.row_step = {0, 40};
  lib.cell(top).add_ref(ref);
  const Region flat = lib.flatten(top, layers::kMetal1);
  EXPECT_EQ(flat.area(), 100 * 12);
  EXPECT_EQ(lib.flat_shape_count(top), 12u);
  EXPECT_EQ(lib.bbox(top), (Rect{0, 0, 160, 90}));
}

TEST(Library, DeepHierarchyBBox) {
  Library lib{"L"};
  std::uint32_t prev = lib.new_cell("lvl0");
  lib.cell(prev).add(layers::kMetal1, Rect{0, 0, 10, 10});
  for (int i = 1; i < 5; ++i) {
    const std::uint32_t cur = lib.new_cell("lvl" + std::to_string(i));
    CellRef a;
    a.cell_index = prev;
    a.transform = Transform{Orient::kR0, {0, 0}};
    CellRef b;
    b.cell_index = prev;
    b.transform = Transform{Orient::kR0, {Coord{20} << i, 0}};
    lib.cell(cur).add_ref(a);
    lib.cell(cur).add_ref(b);
    prev = cur;
  }
  // Each level doubles the instance count.
  EXPECT_EQ(lib.flat_shape_count(prev), 16u);
  EXPECT_EQ(lib.flatten(prev, layers::kMetal1).area(), 100 * 16);
}

TEST(Library, ReferenceCycleIsDetected) {
  Library lib{"L"};
  const std::uint32_t a = lib.new_cell("a");
  const std::uint32_t b = lib.new_cell("b");
  CellRef ra;
  ra.cell_index = b;
  lib.cell(a).add_ref(ra);
  CellRef rb;
  rb.cell_index = a;
  lib.cell(b).add_ref(rb);
  EXPECT_THROW(lib.flatten(a, layers::kMetal1), std::runtime_error);
}

TEST(Library, FlattenWindowClipsAndPrunes) {
  Library lib{"L"};
  const std::uint32_t leaf = lib.new_cell("leaf");
  lib.cell(leaf).add(layers::kMetal1, Rect{0, 0, 10, 10});
  const std::uint32_t top = lib.new_cell("top");
  CellRef ref;
  ref.cell_index = leaf;
  ref.cols = 100;
  ref.rows = 1;
  ref.col_step = {20, 0};
  lib.cell(top).add_ref(ref);
  const Region r = lib.flatten_window(top, layers::kMetal1, Rect{95, 0, 145, 10});
  // Instances at x=100,120,140 intersect; x=140 clipped to 5 wide.
  EXPECT_EQ(r.area(), 100 + 100 + 50);
}

TEST(Density, UniformCoverage) {
  Region r{Rect{0, 0, 100, 100}};
  const DensityMap m = density_map(r, Rect{0, 0, 100, 100}, 25);
  EXPECT_EQ(m.nx, 4);
  EXPECT_EQ(m.ny, 4);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 1.0);
}

TEST(Density, HalfCoverage) {
  Region r{Rect{0, 0, 50, 100}};
  const DensityMap m = density_map(r, Rect{0, 0, 100, 100}, 50);
  EXPECT_DOUBLE_EQ(m.mean(), 0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
}

TEST(Density, PartialTilesAtEdge) {
  Region r{Rect{0, 0, 110, 110}};
  const DensityMap m = density_map(r, Rect{0, 0, 110, 110}, 50);
  EXPECT_EQ(m.nx, 3);  // 50, 50, 10
  EXPECT_DOUBLE_EQ(m.min(), 1.0);  // clipped tiles still fully covered
}

}  // namespace
}  // namespace dfm
