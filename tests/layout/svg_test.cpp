#include "layout/svg.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

#include <fstream>

namespace dfm {
namespace {

TEST(Svg, BasicDocumentStructure) {
  SvgWriter w(Rect{0, 0, 1000, 500}, 400);
  w.add_layer(Region{Rect{100, 100, 400, 300}}, "#ff0000");
  const std::string svg = w.to_string();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("#ff0000"), std::string::npos);
  EXPECT_NE(svg.find("width=\"400\""), std::string::npos);
  // Aspect ratio preserved: 1000x500 at 400px wide -> 200px tall.
  EXPECT_NE(svg.find("height=\"200\""), std::string::npos);
}

TEST(Svg, RectCountMatchesGeometry) {
  SvgWriter w(Rect{0, 0, 1000, 1000});
  Region r;
  r.add(Rect{0, 0, 100, 100});
  r.add(Rect{500, 500, 600, 600});
  r.add(Rect{800, 0, 900, 100});
  w.add_layer(r, "#00ff00");
  const std::string svg = w.to_string();
  std::size_t count = 0, pos = 0;
  while ((pos = svg.find("  <rect", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 3u);
}

TEST(Svg, YAxisIsFlipped) {
  // A rect at the layout BOTTOM must render near the SVG bottom (large y).
  SvgWriter w(Rect{0, 0, 100, 100}, 100);
  w.add_layer(Region{Rect{0, 0, 100, 10}}, "#0000ff");
  const std::string svg = w.to_string();
  // The rect's SVG y is viewport_hi - hi = 90.
  EXPECT_NE(svg.find("y=\"90\""), std::string::npos);
}

TEST(Svg, OverlaysAndLabels) {
  SvgWriter w(Rect{0, 0, 1000, 1000});
  SvgOverlay o;
  o.box = Rect{100, 100, 300, 300};
  o.label = "V1";
  w.add_overlay(o);
  const std::string svg = w.to_string();
  EXPECT_NE(svg.find("stroke=\"#cc3311\""), std::string::npos);
  EXPECT_NE(svg.find(">V1</text>"), std::string::npos);
}

TEST(Svg, EmptyViewportRejected) {
  EXPECT_THROW(SvgWriter(Rect::empty(), 400), std::invalid_argument);
  EXPECT_THROW(SvgWriter(Rect{0, 0, 100, 100}, 0), std::invalid_argument);
}

TEST(Svg, RenderHelperUsesStableColors) {
  DesignParams p;
  p.seed = 2;
  p.rows = 1;
  p.cells_per_row = 3;
  p.routes = 3;
  const Library lib = generate_design(p);
  const auto top = lib.top_cells()[0];
  LayerMap m;
  for (const LayerKey k : {layers::kMetal1, layers::kMetal2}) {
    m.emplace(k, lib.flatten(top, k));
  }
  const std::string svg =
      render_svg(m, {layers::kMetal1, layers::kMetal2}, lib.bbox(top));
  EXPECT_NE(svg.find(SvgWriter::default_color(layers::kMetal1)),
            std::string::npos);
  EXPECT_NE(svg.find(SvgWriter::default_color(layers::kMetal2)),
            std::string::npos);
  EXPECT_NE(SvgWriter::default_color(layers::kMetal1),
            SvgWriter::default_color(layers::kMetal2));
}

TEST(Svg, FileWriting) {
  const std::string path = ::testing::TempDir() + "/dfm_test.svg";
  SvgWriter w(Rect{0, 0, 100, 100});
  w.add_layer(Region{Rect{10, 10, 90, 90}}, "#123456");
  w.write_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace dfm
