// FFT fast-path equivalence and invariance tests: the FFT convolution
// must match the direct separable path within a pinned tolerance, must
// produce the *identical* thresholded hotspot set, and must be
// bit-identical to itself at every thread count.
#include "litho/fft.h"

#include "core/parallel.h"
#include "gen/rng.h"
#include "litho/kernel_detail.h"
#include "litho/litho.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dfm {
namespace {

OpticalModel model() {
  OpticalModel m;
  m.sigma = 25;
  m.px = 5;
  return m;
}

Region random_mask(Rng& rng, const Rect& within, int shapes) {
  Region r;
  for (int i = 0; i < shapes; ++i) {
    const Coord x = rng.uniform(within.lo.x, within.hi.x - 60);
    const Coord y = rng.uniform(within.lo.y, within.hi.y - 60);
    r.add(Rect{x, y, x + rng.uniform(60, 200), y + rng.uniform(60, 200)});
  }
  return r;
}

TEST(Fft, RoundTripRecoversInput) {
  const fftconv::FftPlan plan = fftconv::make_plan(64);
  Rng rng(7);
  std::vector<float> re(64), im(64);
  for (int i = 0; i < 64; ++i) {
    re[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform01()) - 0.5f;
    im[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.uniform01()) - 0.5f;
  }
  const std::vector<float> re0 = re, im0 = im;
  fftconv::fft(plan, re.data(), im.data(), /*inverse=*/false);
  fftconv::fft(plan, re.data(), im.data(), /*inverse=*/true);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(re[static_cast<std::size_t>(i)],
                re0[static_cast<std::size_t>(i)], 1e-5f);
    EXPECT_NEAR(im[static_cast<std::size_t>(i)],
                im0[static_cast<std::size_t>(i)], 1e-5f);
  }
}

TEST(Fft, ParsevalHoldsForImpulse) {
  // An impulse transforms to a flat spectrum of 1s: the cheapest full
  // check of twiddle/bit-reversal wiring at a non-trivial size.
  const int n = 256;
  const fftconv::FftPlan plan = fftconv::make_plan(n);
  std::vector<float> re(static_cast<std::size_t>(n), 0.0f);
  std::vector<float> im(static_cast<std::size_t>(n), 0.0f);
  re[0] = 1.0f;
  fftconv::fft(plan, re.data(), im.data(), /*inverse=*/false);
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(re[static_cast<std::size_t>(k)], 1.0f, 1e-5f);
    EXPECT_NEAR(im[static_cast<std::size_t>(k)], 0.0f, 1e-5f);
  }
}

TEST(Fft, KernelSpectrumMatchesNaiveDft) {
  const std::vector<float> taps = detail::gaussian_taps(3.2);
  const int radius = static_cast<int>(taps.size() / 2);
  const int n = 64;
  ASSERT_LT(2 * radius, n);
  const std::vector<float> h = fftconv::kernel_spectrum(taps, n);
  ASSERT_EQ(h.size(), static_cast<std::size_t>(n));

  // Embed the centered taps circularly (tap m at index m mod n) and take
  // the naive DFT; symmetry makes the imaginary part vanish.
  std::vector<double> spatial(static_cast<std::size_t>(n), 0.0);
  for (int m = -radius; m <= radius; ++m) {
    const int idx = (m + n) % n;
    spatial[static_cast<std::size_t>(idx)] =
        static_cast<double>(taps[static_cast<std::size_t>(radius + m)]);
  }
  for (int k = 0; k < n; ++k) {
    double re = 0, im = 0;
    for (int j = 0; j < n; ++j) {
      const double a = -2.0 * M_PI * k * j / n;
      re += spatial[static_cast<std::size_t>(j)] * std::cos(a);
      im += spatial[static_cast<std::size_t>(j)] * std::sin(a);
    }
    EXPECT_NEAR(h[static_cast<std::size_t>(k)], re, 1e-5) << "k=" << k;
    EXPECT_NEAR(im, 0.0, 1e-9) << "k=" << k;
  }
}

TEST(Fft, CrossoverPrefersDirectForNarrowKernels) {
  // Nominal-focus kernels (ntaps ~31) should stay on the vectorized
  // direct loop; genuinely wide kernels should switch to FFT; tiny
  // rasters never benefit.
  EXPECT_FALSE(fftconv::fft_beats_direct(13, 512, 512));
  EXPECT_FALSE(fftconv::fft_beats_direct(31, 512, 512));
  EXPECT_TRUE(fftconv::fft_beats_direct(121, 512, 512));
  EXPECT_TRUE(fftconv::fft_beats_direct(301, 256, 256));
  EXPECT_FALSE(fftconv::fft_beats_direct(121, 4, 4));
}

TEST(Fft, KernelSpectrumCacheReusesTransforms) {
  KernelSpectrumCache cache;
  const std::vector<float> taps = detail::gaussian_taps(5.0);
  const auto a = cache.spectrum(taps, 256);
  const auto b = cache.spectrum(taps, 256);
  EXPECT_EQ(a.get(), b.get()) << "same key must share one spectrum";
  EXPECT_EQ(cache.size(), 1u);
  const auto c = cache.spectrum(taps, 512);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);
  const auto d = cache.spectrum(detail::gaussian_taps(6.0), 256);
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(cache.size(), 3u);
}

class FftEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(FftEquivalence, AerialMatchesDirectWithinTolerance) {
  Rng rng(GetParam() * 17 + 5);
  const Rect box{0, 0, 900, 900};
  const Region mask = random_mask(rng, box, 8);
  const Rect window{100, 100, 800, 800};
  for (const Coord defocus : {Coord{0}, Coord{40}}) {
    const Raster direct = aerial_image(mask, window, model(), defocus);
    const Raster viafft = aerial_image_ex(mask, window, model(), defocus,
                                          nullptr, LithoFastMode::kFft);
    ASSERT_EQ(direct.nx, viafft.nx);
    ASSERT_EQ(direct.ny, viafft.ny);
    float max_diff = 0;
    for (std::size_t i = 0; i < direct.values.size(); ++i) {
      max_diff = std::max(max_diff,
                          std::abs(direct.values[i] - viafft.values[i]));
    }
    // Pinned tolerance: float FFT round-off across a few hundred taps.
    EXPECT_LT(max_diff, 1e-4f) << "defocus=" << defocus;
  }
}

TEST_P(FftEquivalence, HotspotSetsIdenticalToDirect) {
  Rng rng(GetParam() * 23 + 11);
  const Rect box{0, 0, 1200, 1200};
  Region mask = random_mask(rng, box, 8);
  // A deliberately weak construct so the comparison exercises non-empty
  // hotspot sets: a minimum-width line pinched between two wide blocks.
  mask.add(Rect{300, 500, 350, 900});
  mask.add(Rect{400, 500, 450, 900});
  mask.add(Rect{356, 500, 394, 900});  // thin line in a tight slot
  const Rect window = box.expanded(150);
  const Region direct = simulate_print(mask, window, model(), {});
  const Region viafft = simulate_print_ex(mask, window, model(), {}, nullptr,
                                          LithoFastMode::kFft);
  const auto spots_direct = find_hotspots(mask, direct, 12);
  const auto spots_fft = find_hotspots(mask, viafft, 12);
  EXPECT_EQ(spots_direct, spots_fft);
}

TEST_P(FftEquivalence, BitIdenticalAcrossThreadCounts) {
  Rng rng(GetParam() * 31 + 3);
  const Rect box{0, 0, 1000, 1000};
  const Region mask = random_mask(rng, box, 10);
  const Rect window{50, 50, 950, 950};

  ThreadPool p1(1);
  const Raster base = aerial_image_ex(mask, window, model(), 20, &p1,
                                      LithoFastMode::kFft);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pn(threads);
    const Raster img = aerial_image_ex(mask, window, model(), 20, &pn,
                                       LithoFastMode::kFft);
    ASSERT_EQ(base.values.size(), img.values.size());
    for (std::size_t i = 0; i < base.values.size(); ++i) {
      ASSERT_EQ(base.values[i], img.values[i])
          << "pixel " << i << " differs at " << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FftEquivalence, ::testing::Range(1u, 7u));

}  // namespace
}  // namespace dfm
