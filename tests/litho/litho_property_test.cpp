// Property sweeps for the litho model: symmetry, monotonicity, and
// conservation behaviours that must hold for any sane optical model.
#include "litho/litho.h"

#include "gen/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dfm {
namespace {

OpticalModel model() {
  OpticalModel m;
  m.sigma = 25;
  m.px = 5;
  return m;
}

class LithoProperty : public ::testing::TestWithParam<unsigned> {};

Region random_mask(Rng& rng, const Rect& within, int shapes) {
  Region r;
  for (int i = 0; i < shapes; ++i) {
    const Coord x = rng.uniform(within.lo.x, within.hi.x - 60);
    const Coord y = rng.uniform(within.lo.y, within.hi.y - 60);
    r.add(Rect{x, y, x + rng.uniform(60, 200), y + rng.uniform(60, 200)});
  }
  return r;
}

TEST_P(LithoProperty, MirrorSymmetry) {
  Rng rng(GetParam());
  const Rect box{0, 0, 600, 600};
  const Region mask = random_mask(rng, box, 5);
  const Rect window{100, 100, 500, 500};

  const Raster img = aerial_image(mask, window, model());
  // Mirror the mask about x = 600 and sample mirrored points.
  const Transform mirror{Orient::kMXR180, {600, 0}};  // x -> 600 - x
  const Region mmask = mask.transformed(mirror);
  const Raster mimg = aerial_image(mmask, mirror.apply(window), model());
  for (int i = 0; i < 30; ++i) {
    const Point p{rng.uniform(120, 480), rng.uniform(120, 480)};
    const Point mp = mirror.apply(p);
    EXPECT_NEAR(img.sample(p), mimg.sample(mp), 1e-4) << to_string(p);
  }
}

TEST_P(LithoProperty, IntensityMonotoneInMaskArea) {
  Rng rng(GetParam() * 3 + 1);
  const Rect box{0, 0, 600, 600};
  const Region small = random_mask(rng, box, 3);
  const Region big = small | random_mask(rng, box, 3);
  const Rect window{100, 100, 500, 500};
  const Raster a = aerial_image(small, window, model());
  const Raster b = aerial_image(big, window, model());
  for (int i = 0; i < 50; ++i) {
    const Point p{rng.uniform(120, 480), rng.uniform(120, 480)};
    EXPECT_LE(a.sample(p), b.sample(p) + 1e-5);
  }
}

TEST_P(LithoProperty, PrintedRegionMonotoneInDose) {
  Rng rng(GetParam() * 7 + 2);
  const Rect box{0, 0, 600, 600};
  const Region mask = random_mask(rng, box, 4);
  const Rect window{50, 50, 550, 550};
  const Raster img = aerial_image(mask, window, model());
  const Region lo = printed_region(img, model(), {0.9, 0});
  const Region hi = printed_region(img, model(), {1.1, 0});
  EXPECT_TRUE((lo - hi).empty()) << "higher dose must print a superset";
}

TEST_P(LithoProperty, DefocusNeverSharpens) {
  Rng rng(GetParam() * 11 + 3);
  const Rect box{0, 0, 600, 600};
  const Region mask = random_mask(rng, box, 4);
  const Rect window{50, 50, 550, 550};
  // Peak intensity can only drop (or hold) with defocus for these masks.
  const Raster f0 = aerial_image(mask, window, model(), 0);
  const Raster f1 = aerial_image(mask, window, model(), 80);
  float max0 = 0, max1 = 0;
  for (const float v : f0.values) max0 = std::max(max0, v);
  for (const float v : f1.values) max1 = std::max(max1, v);
  EXPECT_LE(max1, max0 + 1e-4);
}

TEST_P(LithoProperty, HotspotsOnlyWhereGeometryIs) {
  Rng rng(GetParam() * 13 + 4);
  const Rect box{0, 0, 800, 800};
  const Region mask = random_mask(rng, box, 5);
  const auto spots = litho_hotspots(mask, box.expanded(100), model(), 12);
  for (const Hotspot& h : spots) {
    EXPECT_TRUE(h.marker.overlaps(mask.bbox().expanded(100)));
    EXPECT_GT(h.severity, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LithoProperty, ::testing::Range(1u, 9u));

TEST(LithoBossung, CdRespondsSmoothlyToDefocus) {
  // Pins the sigma_at_nm fix: the old integer-rounded sigma_at mapped
  // defoci 0 and 6 to the same 25nm sigma, so the Bossung curve had flat
  // steps. With the unrounded sigma every defocus step must blur a
  // sub-sigma line strictly further, shrinking its printed CD
  // monotonically. (A wide line would not do: at the 0.5 threshold its
  // edge sits at the mask edge for any blur, so its CD is defocus-flat.)
  const OpticalModel m = model();
  Region mask;
  mask.add(Rect{-600, -20, 600, 20});  // 40nm line, gauge across it
  const Rect window{-800, -400, 800, 400};
  const Gauge g{{0, -300}, {0, 300}, "across"};
  const std::vector<BossungPoint> pts =
      bossung(mask, window, m, g, {1.0}, {0, 6, 12, 18, 24});
  ASSERT_EQ(pts.size(), 5u);
  for (const BossungPoint& p : pts) {
    ASSERT_GT(p.cd, 0) << "defocus " << p.cond.defocus;
  }
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].cd, pts[i - 1].cd)
        << "CD must strictly shrink from defocus " << pts[i - 1].cond.defocus
        << " to " << pts[i].cond.defocus;
  }
}

TEST(LithoBossung, UnroundedSigmaGrowsInQuadrature) {
  const OpticalModel m = model();
  EXPECT_DOUBLE_EQ(m.sigma_at_nm(0), 25.0);  // best focus is untouched
  EXPECT_NEAR(m.sigma_at_nm(6), std::sqrt(625.0 + 9.0), 1e-12);
  EXPECT_NEAR(m.sigma_at_nm(40), std::sqrt(625.0 + 400.0), 1e-12);
  // The deprecated shim still answers, rounded to integer nm.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_EQ(m.sigma_at(6), 25);
  EXPECT_EQ(m.sigma_at(40), 32);
#pragma GCC diagnostic pop
}

}  // namespace
}  // namespace dfm
