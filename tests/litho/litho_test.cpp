#include "litho/litho.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

OpticalModel model() {
  OpticalModel m;
  m.sigma = 30;
  m.threshold = 0.5;
  m.px = 5;
  return m;
}

TEST(Raster, CoverageFractionsAreExact) {
  const Region r{Rect{0, 0, 10, 10}};
  const Raster img = rasterize(r, Rect{0, 0, 20, 20}, 10);
  ASSERT_EQ(img.nx, 2);
  ASSERT_EQ(img.ny, 2);
  EXPECT_FLOAT_EQ(img.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(img.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(1, 1), 0.0f);
}

TEST(Raster, PartialPixelCoverage) {
  const Region r{Rect{0, 0, 5, 10}};  // half of one 10x10 pixel
  const Raster img = rasterize(r, Rect{0, 0, 10, 10}, 10);
  EXPECT_FLOAT_EQ(img.at(0, 0), 0.5f);
}

TEST(Raster, SampleBilinear) {
  const Region r{Rect{0, 0, 10, 20}};
  const Raster img = rasterize(r, Rect{0, 0, 20, 20}, 10);
  // Left pixel 1.0, right 0.0; halfway between centers ~0.5.
  EXPECT_NEAR(img.sample({10, 10}), 0.5, 1e-6);
  EXPECT_NEAR(img.sample({5, 10}), 1.0, 1e-6);
}

TEST(Raster, OversizeWindowRejected) {
  EXPECT_THROW(rasterize(Region{}, Rect{0, 0, 10000000, 10000000}, 1),
               std::invalid_argument);
  EXPECT_THROW(rasterize(Region{}, Rect{0, 0, 10, 10}, 0),
               std::invalid_argument);
}

TEST(Aerial, WideFeatureReachesFullIntensity) {
  // A feature much wider than the PSF prints at ~1.0 in its middle.
  const Region mask{Rect{-500, -500, 500, 500}};
  const Raster img = aerial_image(mask, Rect{-100, -100, 100, 100}, model());
  EXPECT_GT(img.sample({0, 0}), 0.98);
}

TEST(Aerial, EdgeIntensityIsHalf) {
  // A straight edge of a large feature images at exactly 1/2.
  const Region mask{Rect{0, -1000, 1000, 1000}};
  const Raster img = aerial_image(mask, Rect{-100, -100, 100, 100}, model());
  EXPECT_NEAR(img.sample({0, 0}), 0.5, 0.03);
}

TEST(Aerial, NarrowLineLosesContrast) {
  const OpticalModel m = model();
  const Region wide{Rect{-200, -1000, 200, 1000}};
  const Region narrow{Rect{-20, -1000, 20, 1000}};
  const Rect w{-100, -100, 100, 100};
  const double iw = aerial_image(wide, w, m).sample({0, 0});
  const double in = aerial_image(narrow, w, m).sample({0, 0});
  EXPECT_GT(iw, 0.95);
  EXPECT_LT(in, 0.6);  // 40nm line vs 30nm sigma: well below full intensity
}

TEST(Printed, LargeSquarePrintsWithRoundedCorners) {
  const Region mask{Rect{0, 0, 400, 400}};
  const Rect w{-100, -100, 500, 500};
  const Region printed = simulate_print(mask, w, model());
  EXPECT_FALSE(printed.empty());
  // Center prints, corners pull back.
  EXPECT_TRUE(printed.contains({200, 200}));
  EXPECT_FALSE(printed.contains({2, 2}));  // corner rounding
  // Mid-edges print close to target.
  EXPECT_TRUE(printed.contains({200, 10}));
}

TEST(Printed, DoseScalesFeatureSize) {
  const Region mask{Rect{0, 0, 100, 2000}};
  const Rect w{-200, 900, 300, 1100};
  const OpticalModel m = model();
  const Region under = simulate_print(mask, w, m, {0.8, 0});
  const Region nominal = simulate_print(mask, w, m, {1.0, 0});
  const Region over = simulate_print(mask, w, m, {1.25, 0});
  EXPECT_LT(under.area(), nominal.area());
  EXPECT_LT(nominal.area(), over.area());
}

TEST(Printed, DefocusShrinksNarrowLine) {
  const Region mask{Rect{0, 0, 60, 2000}};
  const Rect w{-200, 900, 260, 1100};
  const OpticalModel m = model();
  const Area focused = simulate_print(mask, w, m, {1.0, 0}).area();
  const Area defocused = simulate_print(mask, w, m, {1.0, 80}).area();
  EXPECT_LT(defocused, focused);
}

TEST(Gauge, MeasuresLineCd) {
  const OpticalModel m = model();
  const Region mask{Rect{0, -2000, 100, 2000}};
  const Raster img = aerial_image(mask, Rect{-200, -200, 300, 200}, m);
  const Gauge g{{-150, 0}, {250, 0}, "line"};
  const double cd = measure_cd(img, m, {1.0, 0}, g);
  // An isolated 100nm line at threshold 0.5 prints near drawn size.
  EXPECT_NEAR(cd, 100, 15);
}

TEST(Gauge, ReportsPinchAsNegative) {
  const OpticalModel m = model();
  const Region mask{Rect{0, -2000, 12, 2000}};  // far below resolution
  const Raster img = aerial_image(mask, Rect{-200, -200, 200, 200}, m);
  const Gauge g{{-150, 0}, {150, 0}, "thin"};
  EXPECT_LT(measure_cd(img, m, {1.0, 0}, g), 0);
}

TEST(Bossung, DoseMonotoneAtEveryFocus) {
  const OpticalModel m = model();
  const Region mask{Rect{0, -2000, 100, 2000}};
  const Gauge g{{-150, 0}, {250, 0}, "line"};
  const auto pts = bossung(mask, Rect{-200, -200, 300, 200}, m, g,
                           {0.85, 1.0, 1.15}, {0, 60});
  ASSERT_EQ(pts.size(), 6u);
  // Within each defocus row, higher dose -> larger CD (bright feature).
  for (std::size_t row = 0; row < 2; ++row) {
    const double lo = pts[row * 3 + 0].cd;
    const double mid = pts[row * 3 + 1].cd;
    const double hi = pts[row * 3 + 2].cd;
    EXPECT_LT(lo, mid);
    EXPECT_LT(mid, hi);
  }
}

TEST(PvBand, AlwaysSubsetOfSometimes) {
  const OpticalModel m = model();
  Region mask;
  mask.add(Rect{0, 0, 100, 1000});
  mask.add(Rect{160, 0, 260, 1000});
  const Rect w{-100, 400, 360, 600};
  const std::vector<ProcessCondition> corners = {
      {0.9, 0}, {1.1, 0}, {0.9, 70}, {1.1, 70}};
  const PvBand band = pv_band(mask, w, m, corners);
  EXPECT_TRUE((band.always - band.sometimes).empty());
  EXPECT_FALSE(band.band().empty());  // dose range must move edges
  EXPECT_GT(band.sometimes.area(), band.always.area());
}

TEST(Hotspots, CleanWideLineHasNone) {
  const OpticalModel m = model();
  const Region target{Rect{0, 0, 200, 3000}};
  const auto spots = litho_hotspots(target, Rect{-200, 1000, 400, 2000}, m, 25);
  EXPECT_TRUE(spots.empty());
}

TEST(Hotspots, SubResolutionLinePinches) {
  const OpticalModel m = model();
  const Region target{Rect{0, 0, 30, 3000}};  // 30nm line, sigma 30
  const auto spots = litho_hotspots(target, Rect{-200, 1000, 230, 2000}, m, 10);
  ASSERT_FALSE(spots.empty());
  EXPECT_EQ(spots[0].kind, HotspotKind::kPinch);
}

TEST(Hotspots, TinyGapBridges) {
  const OpticalModel m = model();
  Region target;
  target.add(Rect{0, 0, 300, 1000});
  target.add(Rect{320, 0, 620, 1000});  // 20nm gap, sigma 30: will bridge
  const auto spots =
      litho_hotspots(target, Rect{-100, 400, 720, 600}, m, 8);
  bool bridge = false;
  for (const Hotspot& h : spots) {
    if (h.kind == HotspotKind::kBridge) bridge = true;
  }
  EXPECT_TRUE(bridge);
}

TEST(Hotspots, SeverityOrdersByMissingArea) {
  const Region target{Rect{0, 0, 100, 100}};
  Region printed;  // nothing printed: one pinch of full eroded area
  const auto spots = find_hotspots(target, printed, 10);
  ASSERT_EQ(spots.size(), 1u);
  EXPECT_EQ(spots[0].kind, HotspotKind::kPinch);
  EXPECT_DOUBLE_EQ(spots[0].severity, 80.0 * 80.0);
}

}  // namespace
}  // namespace dfm
