// Prefilter safety suite: the conservative prefilter's one obligation is
// that a skipped tile can NEVER contain an owned hotspot at any process
// condition in the calibrated window. This suite discharges it
// empirically: over a thousand seeded random / strap / pathological
// tiles, every tile the prefilter skips is re-run through the exhaustive
// simulation at every window corner (plus nominal) and asserted
// hotspot-free, and the just-safe / just-unsafe boundary geometry around
// each calibrated threshold is pinned.
#include "litho/prefilter.h"

#include "core/hotspot_flow.h"
#include "core/parallel.h"
#include "core/snapshot.h"
#include "gen/generators.h"
#include "gen/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace dfm {
namespace {

constexpr Coord kTol = 12;

OpticalModel model() {
  OpticalModel m;
  m.sigma = 25;
  m.px = 5;
  return m;
}

PrefilterCalibration cal() {
  return prefilter_calibration(model(), kTol, default_process_window());
}

// Replicates simulate_tile's exact semantics (6-sigma halo window,
// target clipped to the half-halo zone, marker-center ownership) at an
// arbitrary process condition — the exhaustive oracle a skip decision is
// judged against.
std::vector<Hotspot> owned_hotspots(const Region& layer, const Rect& core,
                                    const ProcessCondition& cond,
                                    ThreadPool* pool) {
  const OpticalModel m = model();
  const Coord margin = 6 * m.sigma;
  const Rect window = core.expanded(margin);
  const Region clip = layer.clipped(window);
  if (clip.empty()) return {};
  const Region printed = simulate_print(clip, window, m, cond, pool);
  std::vector<Hotspot> out;
  for (const Hotspot& h : find_hotspots(
           clip.clipped(core.expanded(margin / 2)), printed, kTol)) {
    if (core.contains(h.marker.center())) out.push_back(h);
  }
  return out;
}

// All conditions the default window guards: its corners plus nominal
// (the condition the tiled flow actually simulates).
std::vector<ProcessCondition> guarded_conditions() {
  std::vector<ProcessCondition> conds = default_process_window();
  conds.push_back(ProcessCondition{});
  return conds;
}

// Asserts the prefilter would skip `layer`'s tile and that the skip is
// sound at every guarded condition.
void expect_skips_and_clean(const Region& layer, const Rect& core,
                            ThreadPool* pool, const std::string& what) {
  const PrefilterCalibration c = cal();
  const Coord margin = 6 * model().sigma;
  const Rect window = core.expanded(margin);
  const Region clip = layer.clipped(window);
  const TileFeatures f =
      tile_features(clip, window, c, core.expanded(margin / 2));
  ASSERT_TRUE(prefilter_safe(f, c)) << what;
  for (const ProcessCondition& cond : guarded_conditions()) {
    const auto spots = owned_hotspots(layer, core, cond, pool);
    EXPECT_TRUE(spots.empty())
        << what << ": " << spots.size() << " hotspot(s) at dose=" << cond.dose
        << " defocus=" << cond.defocus;
  }
}

// ---- Calibration sanity ---------------------------------------------------

TEST(PrefilterCalibration, ValidAndOrderedForNominalOptics) {
  const PrefilterCalibration c = cal();
  ASSERT_TRUE(c.valid);
  // A safe dimension must at least clear the tolerance erosion on both
  // sides, and the gap thresholds must leave a non-empty risky band.
  EXPECT_GT(c.safe_min_dim, 2 * kTol);
  EXPECT_GT(c.safe_min_gap, c.small_gap_max);
  // Gaps the tolerance bloat provably covers: 2*tol minus a pixel of
  // quantization slack per side.
  EXPECT_EQ(c.small_gap_max, 2 * kTol - 2 * model().px);
}

TEST(PrefilterCalibration, SoftOpticsAreUnprovable) {
  // sigma 200nm against a 12nm tolerance: the two-plate bleed alone
  // exceeds the tolerance, so no geometry is provably safe and the
  // calibration must refuse to validate rather than guess.
  OpticalModel soft = model();
  soft.sigma = 200;
  const PrefilterCalibration c =
      calibrate_prefilter(soft, kTol, default_process_window());
  EXPECT_FALSE(c.valid);
  TileFeatures f;
  f.rect_count = 1;
  f.min_dim = 100000;  // arbitrarily fat: still must not skip
  EXPECT_FALSE(prefilter_safe(f, c));
}

TEST(PrefilterCalibration, MemoizedFormMatchesDirect) {
  const PrefilterCalibration direct =
      calibrate_prefilter(model(), kTol, default_process_window());
  const PrefilterCalibration memo = cal();
  EXPECT_EQ(direct.valid, memo.valid);
  EXPECT_EQ(direct.safe_min_dim, memo.safe_min_dim);
  EXPECT_EQ(direct.safe_min_gap, memo.safe_min_gap);
  EXPECT_EQ(direct.small_gap_max, memo.small_gap_max);
}

// ---- Boundary pins --------------------------------------------------------

class PrefilterBoundary : public ::testing::Test {
 protected:
  const Rect core{0, 0, 1000, 1000};
  const Rect window = core.expanded(150);  // 6 * sigma(25)
  const Rect zone = core.expanded(75);     // target zone: half the halo
  const PrefilterCalibration c = cal();
  ThreadPool pool{0};

  TileFeatures features(const Region& r) {
    return tile_features(r.clipped(window), window, c, zone);
  }
};

TEST_F(PrefilterBoundary, JustSafeSquareSkipsAndIsClean) {
  ASSERT_TRUE(c.valid);
  Region r;
  r.add(Rect{300, 300, 300 + c.safe_min_dim, 300 + c.safe_min_dim});
  EXPECT_TRUE(prefilter_safe(features(r), c));
  expect_skips_and_clean(r, core, &pool, "square at safe_min_dim");
}

TEST_F(PrefilterBoundary, JustUnsafeSquareIsSimulated) {
  Region r;
  const Coord s = c.safe_min_dim - 1;
  r.add(Rect{300, 300, 300 + s, 300 + s});
  const TileFeatures f = features(r);
  EXPECT_EQ(f.min_dim, s);
  EXPECT_FALSE(prefilter_safe(f, c));
}

TEST_F(PrefilterBoundary, ThinRectIsSimulated) {
  Region r;
  r.add(Rect{300, 100, 350, 900});  // min-width wire: the pinch substrate
  EXPECT_FALSE(prefilter_safe(features(r), c));
}

TEST_F(PrefilterBoundary, WideGapSkipsAndIsClean) {
  Region r;
  const Coord w = c.safe_min_dim + 100;
  r.add(Rect{100, 100, 100 + w, 900});
  r.add(Rect{100 + w + c.safe_min_gap, 100, 100 + 2 * w + c.safe_min_gap, 900});
  const TileFeatures f = features(r);
  EXPECT_EQ(f.min_gap, c.safe_min_gap);
  EXPECT_TRUE(prefilter_safe(f, c));
  expect_skips_and_clean(r, core, &pool, "pair at safe_min_gap");
}

TEST_F(PrefilterBoundary, RiskyGapIsSimulated) {
  // One step inside the provable band on either side flips the decision.
  for (const Coord g : {c.small_gap_max + 1, c.safe_min_gap - 1}) {
    Region r;
    const Coord w = c.safe_min_dim + 100;
    r.add(Rect{100, 100, 100 + w, 900});
    r.add(Rect{100 + w + g, 100, 100 + 2 * w + g, 900});
    const TileFeatures f = features(r);
    EXPECT_TRUE(f.risky_gap) << "gap " << g;
    EXPECT_FALSE(prefilter_safe(f, c)) << "gap " << g;
  }
}

TEST_F(PrefilterBoundary, BloatCoveredGapSkipsAndIsClean) {
  // A gap at most 2*tol - 2px sits entirely inside the tolerance bloat:
  // bridging there is forgiven by construction, so the pair may skip.
  Region r;
  const Coord w = c.safe_min_dim + 100;
  const Coord g = c.small_gap_max;
  ASSERT_GT(g, 0);
  r.add(Rect{100, 100, 100 + w, 900});
  r.add(Rect{100 + w + g, 100, 100 + 2 * w + g, 900});
  EXPECT_TRUE(prefilter_safe(features(r), c));
  expect_skips_and_clean(r, core, &pool, "pair at small_gap_max");
}

TEST_F(PrefilterBoundary, TouchingPairIsSimulated) {
  // Abutting rects form a merged union whose step corners the
  // single-rect bound does not cover: never skip them.
  Region r;
  const Coord w = c.safe_min_dim + 100;
  r.add(Rect{100, 100, 100 + w, 900});
  r.add(Rect{100 + w, 400, 100 + 2 * w, 1200});
  const TileFeatures f = features(r);
  EXPECT_FALSE(prefilter_safe(f, c));
}

TEST_F(PrefilterBoundary, OverflowingTileIsSimulated) {
  // A 2x2 grid of individually-safe squares, all inside the window, but
  // one more rect than the analysis cap: the features must report
  // overflow rather than silently analysing a truncated tile.
  Region r;
  const Coord s = c.safe_min_dim;
  for (Coord i = 0; i < 2; ++i) {
    for (Coord j = 0; j < 2; ++j) {
      r.add(Rect{200 + i * (s + 400), 200 + j * (s + 400),
                 200 + i * (s + 400) + s, 200 + j * (s + 400) + s});
    }
  }
  const TileFeatures f = tile_features(r.clipped(window), window, c, zone,
                                       /*max_rects=*/3);
  EXPECT_TRUE(f.overflow);
  EXPECT_FALSE(prefilter_safe(f, c));
}

// ---- Exhaustive randomized safety sweep -----------------------------------

// Tile generators. Kind 0 builds skip-heavy fat-strap tiles (every strap
// clears safe_min_dim, every gap clears safe_min_gap); kind 1 poisons a
// strap tile with one thin strap or risky gap; kind 2 is the random rect
// soup the litho property tests use; kind 3 flattens injected
// pathological constructs (pinch / bridge / notch / spacing) — labelled
// weak geometry the prefilter must hand to the simulator.
Region straps_tile(Rng& rng, const Rect& window, const Rect& zone,
                   const PrefilterCalibration& c) {
  // Full-height straps whose side edges keep clear of the target-zone
  // corner columns: straps crossing the zone's top/bottom edges are
  // fine (their boundary print artifacts stay outside the core), but a
  // strap edge near a zone corner would wrap it (corner_wrap) and be
  // handed to the simulator — which is correct, just not a skip.
  Region r;
  const Coord w = c.safe_min_dim + rng.uniform(0, 150);
  const Coord g = c.safe_min_gap + rng.uniform(0, 200);
  const Coord clear = 2 * c.edge_tolerance + 2;
  const Coord xmin = zone.lo.x + clear;
  const Coord xmax = zone.hi.x - clear;
  Coord x = xmin + rng.uniform(0, g);
  while (x + w <= xmax) {
    r.add(Rect{x, window.lo.y, x + w, window.hi.y});
    x += w + g;
  }
  return r;
}

Region poisoned_straps_tile(Rng& rng, const Rect& window, const Rect& zone,
                            const PrefilterCalibration& c) {
  Region r = straps_tile(rng, window, zone, c);
  if (rng.chance(0.5)) {
    // A thin strap threaded through the middle.
    const Coord w = rng.uniform(20, c.safe_min_dim - 1);
    const Coord x = window.lo.x + rng.uniform(0, 200);
    r.add(Rect{x, window.lo.y, x + w, window.hi.y});
  } else {
    // A fat island at a risky gap from everything near it.
    const Coord g = c.small_gap_max + 1 +
                    rng.uniform(0, c.safe_min_gap - c.small_gap_max - 2);
    const Rect b = r.bbox();
    r.add(Rect{b.hi.x + g, window.lo.y, b.hi.x + g + c.safe_min_dim,
               window.hi.y});
  }
  return r;
}

Region random_rect_tile(Rng& rng, const Rect& within) {
  Region r;
  const int shapes = static_cast<int>(rng.uniform(1, 10));
  for (int i = 0; i < shapes; ++i) {
    const Coord x = rng.uniform(within.lo.x, within.hi.x - 200);
    const Coord y = rng.uniform(within.lo.y, within.hi.y - 200);
    r.add(Rect{x, y, x + rng.uniform(60, 260), y + rng.uniform(60, 260)});
  }
  return r;
}

Region pathological_tile(Rng& rng, const Rect& core) {
  Cell c("patho");
  const Tech tech;
  const int n = static_cast<int>(rng.uniform(1, 3));
  for (int i = 0; i < n; ++i) {
    const Point at{rng.uniform(core.lo.x + 250, core.hi.x - 250),
                   rng.uniform(core.lo.y + 250, core.hi.y - 250)};
    switch (rng.index(4)) {
      case 0: inject_pinch_candidate(c, tech, at); break;
      case 1: inject_bridge_candidate(c, tech, at); break;
      case 2: inject_notch(c, tech, at); break;
      default: inject_spacing_violation(c, tech, at); break;
    }
  }
  Library lib;
  const std::uint32_t idx = lib.add_cell(std::move(c));
  return lib.flatten(idx, layers::kMetal1);
}

TEST(PrefilterExhaustive, EverySkippedTileIsProvablyClean) {
  const PrefilterCalibration c = cal();
  ASSERT_TRUE(c.valid);
  const Rect core{0, 0, 1000, 1000};
  const Coord margin = 6 * model().sigma;
  const Rect window = core.expanded(margin);
  const Rect zone = core.expanded(margin / 2);
  ThreadPool pool(0);

  constexpr int kTiles = 1040;
  int skipped = 0, simulated = 0, empty = 0;
  for (int i = 0; i < kTiles; ++i) {
    Rng rng(static_cast<std::uint64_t>(i) * 2654435761u + 17);
    Region layer;
    switch (i % 4) {
      case 0: layer = straps_tile(rng, window, zone, c); break;
      case 1: layer = poisoned_straps_tile(rng, window, zone, c); break;
      case 2: layer = random_rect_tile(rng, core.expanded(100)); break;
      default: layer = pathological_tile(rng, core); break;
    }
    const Region clip = layer.clipped(window);
    if (clip.empty()) {
      ++empty;
      continue;
    }
    const TileFeatures f = tile_features(clip, window, c, zone);
    if (!prefilter_safe(f, c)) {
      ++simulated;
      continue;
    }
    ++skipped;
    // The skip claim: no owned hotspot at ANY guarded condition.
    for (const ProcessCondition& cond : guarded_conditions()) {
      const auto spots = owned_hotspots(layer, core, cond, &pool);
      ASSERT_TRUE(spots.empty())
          << "tile " << i << " (kind " << i % 4 << ") was skipped but has "
          << spots.size() << " hotspot(s) at dose=" << cond.dose
          << " defocus=" << cond.defocus;
    }
  }
  // The sweep must actually exercise both outcomes to prove anything.
  EXPECT_GE(skipped, 250) << "skip rate collapsed; the sweep is vacuous";
  EXPECT_GE(simulated, 250) << "everything skipped; generators too tame";
  ASSERT_EQ(skipped + simulated + empty, kTiles);
}

// ---- Tiled-flow equivalence -----------------------------------------------

LayerMap sample_design_layers() {
  DesignParams params;
  params.seed = 42;
  params.rows = 4;
  params.cells_per_row = 10;
  params.routes = 30;
  params.via_fields = 1;
  const Library lib = generate_design(params);
  LayerMap layers;
  layers[layers::kMetal1] =
      lib.flatten(lib.top_cells().front(), layers::kMetal1);
  return layers;
}

TEST(PrefilterFlow, TiledRunMatchesPrefilterOffBitForBit) {
  const LayerMap layers = sample_design_layers();
  const Region& m1 = layers.at(layers::kMetal1);
  const Rect extent = m1.bbox();

  HotspotSimOptions off;
  off.model = model();
  off.tile = 4000;
  off.fast = LithoFastMode::kOff;
  const HotspotTileSim base = simulate_hotspots_tiled(m1, extent, off);
  EXPECT_EQ(base.skipped, 0u);

  for (const LithoFastMode mode :
       {LithoFastMode::kAuto, LithoFastMode::kFft, LithoFastMode::kDirect}) {
    HotspotSimOptions fast = off;
    fast.fast = mode;
    const HotspotTileSim sim = simulate_hotspots_tiled(m1, extent, fast);
    ASSERT_EQ(sim.tiles.size(), base.tiles.size());
    EXPECT_EQ(sim.per_tile, base.per_tile)
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(sim.merged(), base.merged());
  }
}

TEST(PrefilterFlow, ResultInvariantAcrossThreadCounts) {
  const LayerMap layers = sample_design_layers();
  const Region& m1 = layers.at(layers::kMetal1);
  const Rect extent = m1.bbox();

  HotspotSimOptions opt1;
  opt1.model = model();
  opt1.tile = 4000;
  opt1.threads = 1;
  const HotspotTileSim base = simulate_hotspots_tiled(m1, extent, opt1);
  for (const unsigned threads : {2u, 8u}) {
    HotspotSimOptions optn = opt1;
    optn.threads = threads;
    const HotspotTileSim sim = simulate_hotspots_tiled(m1, extent, optn);
    EXPECT_EQ(sim.per_tile, base.per_tile) << threads << " threads";
    EXPECT_EQ(sim.skipped, base.skipped) << threads << " threads";
  }
}

TEST(PrefilterFlow, SnapshotOverloadMatchesRegionOverload) {
  LayerMap layers = sample_design_layers();
  const Region m1 = layers.at(layers::kMetal1);
  const Rect extent = m1.bbox();
  const LayoutSnapshot snap(std::move(layers));

  HotspotSimOptions opt;
  opt.model = model();
  opt.tile = 4000;
  const HotspotTileSim from_region = simulate_hotspots_tiled(m1, extent, opt);
  const HotspotTileSim from_snap =
      simulate_hotspots_tiled(snap, layers::kMetal1, extent, opt);
  EXPECT_EQ(from_snap.per_tile, from_region.per_tile);
  // Density-gated tiles were clip-empty no-ops in the region path too;
  // they are not prefilter skips, so the count can only shrink.
  EXPECT_LE(from_snap.skipped, from_region.skipped);
}

TEST(PrefilterFlow, EmptyTilesAreNotCountedAsSkips) {
  Region sparse;
  sparse.add(Rect{0, 0, 400, 400});  // one fat block, tiles of nothing after
  const Rect extent{0, 0, 20000, 20000};
  HotspotSimOptions opt;
  opt.model = model();
  opt.tile = 2000;
  const HotspotTileSim sim = simulate_hotspots_tiled(sparse, extent, opt);
  // Only the tiles whose halo actually sees the block can be prefilter
  // skips; the vast empty remainder must not inflate the statistic.
  EXPECT_LE(sim.skipped, 4u);
}

}  // namespace
}  // namespace dfm
