// Failure injection for the OASIS reader: corrupted or truncated streams
// must throw cleanly (or parse to a consistent library), never crash.
// The streaming (mmap/index) path is held to the same bar below.
#include "oasis/oasis.h"

#include "oasis/oas_stream.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace dfm {
namespace {

std::string reference_stream() {
  DesignParams p;
  p.seed = 6;
  p.rows = 1;
  p.cells_per_row = 3;
  p.routes = 4;
  const Library lib = generate_design(p);
  std::stringstream ss;
  write_oasis(lib, ss);
  return ss.str();
}

class OasisFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(OasisFuzz, ByteFlipsNeverCrash) {
  const std::string good = reference_stream();
  std::mt19937_64 rng(GetParam());
  // Skip the magic (flipping it is the trivially-rejected case, tested
  // separately); target the record stream.
  std::uniform_int_distribution<std::size_t> pos(13, good.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);

  for (int trial = 0; trial < 40; ++trial) {
    std::string bad = good;
    for (int f = 0; f < 1 + trial % 3; ++f) {
      bad[pos(rng)] = static_cast<char>(byte(rng));
    }
    std::stringstream ss(bad);
    try {
      const Library lib = read_oasis(ss);
      for (const Cell& c : lib.cells()) {
        for (const CellRef& r : c.refs()) {
          ASSERT_LT(r.cell_index, lib.cell_count());
        }
      }
    } catch (const std::exception&) {
      // Clean rejection is fine.
    }
  }
}

TEST_P(OasisFuzz, TruncationsNeverCrash) {
  const std::string good = reference_stream();
  std::mt19937_64 rng(GetParam() * 77 + 5);
  std::uniform_int_distribution<std::size_t> cut(0, good.size());
  for (int trial = 0; trial < 40; ++trial) {
    std::stringstream ss(good.substr(0, cut(rng)));
    try {
      (void)read_oasis(ss);
    } catch (const std::exception&) {
    }
  }
}

// Runs a mutant through the full streaming surface — index build,
// whole-layer decode, window decode — the path a lazy out-of-core
// snapshot hydrates through. Either consistent geometry or a structured
// throw; never a crash.
void stream_must_not_crash(std::string bytes) {
  try {
    const OasStreamReader reader = OasStreamReader::from_bytes(
        std::move(bytes));
    const std::uint32_t top = reader.top_cell();
    for (const LayerKey k : reader.layers()) {
      const Region full = reader.read_layer(top, k);
      const Rect bb = reader.layer_bbox(top, k);
      if (!full.empty()) {
        ASSERT_TRUE(bb.contains(full.bbox()));
        ASSERT_EQ(full.clipped(bb), full);
      }
      (void)reader.read_layer_window(top, k, bb);
      (void)reader.read_layer_window(
          top, k, Rect{bb.lo.x, bb.lo.y, bb.lo.x + 1, bb.lo.y + 1});
    }
  } catch (const std::exception&) {
    // Structured rejection at any stage is the expected outcome.
  }
}

TEST_P(OasisFuzz, StreamReaderSurvivesTruncatedTail) {
  // Truncated mmap tail: indexed cell extents run past the buffer end.
  const std::string good = reference_stream();
  std::mt19937_64 rng(GetParam() * 151 + 9);
  std::uniform_int_distribution<std::size_t> cut(0, good.size());
  for (int trial = 0; trial < 40; ++trial) {
    stream_must_not_crash(good.substr(0, cut(rng)));
  }
}

TEST_P(OasisFuzz, StreamReaderSurvivesByteFlips) {
  // Flips in the record stream desynchronize the variable-length record
  // walk, so the index and the bytes it points at disagree — windows
  // that straddle the corrupt record must decode or reject cleanly.
  const std::string good = reference_stream();
  std::mt19937_64 rng(GetParam() * 211 + 17);
  std::uniform_int_distribution<std::size_t> pos(13, good.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int trial = 0; trial < 40; ++trial) {
    std::string bad = good;
    for (int f = 0; f < 1 + trial % 3; ++f) {
      bad[pos(rng)] = static_cast<char>(byte(rng));
    }
    stream_must_not_crash(std::move(bad));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OasisFuzz, ::testing::Range(1u, 6u));

}  // namespace
}  // namespace dfm
