#include "oasis/oasis.h"

#include "gdsii/gdsii.h"
#include "gen/generators.h"
#include "oasis/oas_primitives.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dfm {
namespace {

TEST(OasPrimitives, UintRoundTrip) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xFFFFFFFFFFull}) {
    std::stringstream ss;
    oas::write_uint(ss, v);
    EXPECT_EQ(oas::read_uint(ss), v);
  }
}

TEST(OasPrimitives, SintRoundTrip) {
  for (const std::int64_t v : {0ll, 1ll, -1ll, 63ll, -64ll, 1000000ll,
                               -1000000ll}) {
    std::stringstream ss;
    oas::write_sint(ss, v);
    EXPECT_EQ(oas::read_sint(ss), v);
  }
}

TEST(OasPrimitives, StringRoundTrip) {
  const std::vector<std::string> cases = {"", "a", "cell_name_42",
                                          std::string(300, 'x')};
  for (const std::string& s : cases) {
    std::stringstream ss;
    oas::write_string(ss, s);
    EXPECT_EQ(oas::read_string(ss), s);
  }
}

TEST(OasPrimitives, GdeltaRoundTrip) {
  for (const Point p : {Point{0, 0}, Point{5, 0}, Point{-7, 3}, Point{100, -200},
                        Point{-1, -1}}) {
    std::stringstream ss;
    oas::write_gdelta(ss, p);
    EXPECT_EQ(oas::read_gdelta(ss), p);
  }
}

TEST(OasPrimitives, RealWhole) {
  std::stringstream ss;
  oas::write_real_whole(ss, 1000);
  EXPECT_DOUBLE_EQ(oas::read_real(ss), 1000.0);
  std::stringstream ss2;
  oas::write_real_whole(ss2, -25);
  EXPECT_DOUBLE_EQ(oas::read_real(ss2), -25.0);
}

TEST(OasPrimitives, TruncatedInputThrows) {
  std::stringstream ss;
  ss.str("\x80");  // continuation bit set but stream ends
  EXPECT_THROW(oas::read_uint(ss), std::runtime_error);
}

Library sample_lib() {
  Library lib{"OAS_RT"};
  const std::uint32_t leaf = lib.new_cell("leaf");
  lib.cell(leaf).add(layers::kMetal1, Rect{0, 0, 100, 50});
  lib.cell(leaf).add(layers::kMetal1,
                     Polygon{{{0, 0}, {30, 0}, {30, 20}, {10, 20}, {10, 40}, {0, 40}}});
  lib.cell(leaf).add(layers::kVia1, Rect{10, 10, 20, 20});
  lib.cell(leaf).add_text(Text{LayerKey{10, 0}, Point{5, 5}, "net_a"});

  const std::uint32_t top = lib.new_cell("top");
  CellRef sref;
  sref.cell_index = leaf;
  sref.transform = Transform{Orient::kMXR90, {500, -200}};
  lib.cell(top).add_ref(sref);
  CellRef aref;
  aref.cell_index = leaf;
  aref.cols = 3;
  aref.rows = 2;
  aref.col_step = {200, 0};
  aref.row_step = {0, 300};
  aref.transform = Transform{Orient::kR180, {-1000, 800}};
  lib.cell(top).add_ref(aref);
  CellRef row;
  row.cell_index = leaf;
  row.cols = 4;
  row.rows = 1;
  row.col_step = {250, 0};
  row.transform = Transform{Orient::kR0, {4000, 0}};
  lib.cell(top).add_ref(row);
  return lib;
}

TEST(Oasis, RoundTripPreservesEverything) {
  const Library lib = sample_lib();
  std::stringstream ss;
  write_oasis(lib, ss);
  const Library back = read_oasis(ss);

  ASSERT_EQ(back.cell_count(), 2u);
  const Cell& leaf = back.cell("leaf");
  EXPECT_EQ(leaf.shape_count(), 3u);
  ASSERT_EQ(leaf.texts().size(), 1u);
  EXPECT_EQ(leaf.texts()[0].value, "net_a");
  EXPECT_EQ(leaf.texts()[0].position, (Point{5, 5}));

  const Cell& top = back.cell("top");
  ASSERT_EQ(top.refs().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top.refs()[i], lib.cell("top").refs()[i]) << "ref " << i;
  }
  for (const LayerKey k : lib.layers()) {
    EXPECT_EQ(back.flatten("top", k), lib.flatten("top", k))
        << "layer " << to_string(k);
  }
}

TEST(Oasis, RoundTripGeneratedDesign) {
  DesignParams p;
  p.seed = 8;
  p.rows = 2;
  p.cells_per_row = 5;
  p.routes = 8;
  const Library lib = generate_design(p);
  std::stringstream ss;
  write_oasis(lib, ss);
  const Library back = read_oasis(ss);
  const std::string top = lib.cell(lib.top_cells()[0]).name();
  for (const LayerKey k : lib.layers()) {
    EXPECT_EQ(back.flatten(top, k), lib.flatten(top, k))
        << "layer " << to_string(k);
  }
}

TEST(Oasis, CrossFormatEquivalenceWithGdsii) {
  // The same library through both writers reads back identical geometry.
  DesignParams p;
  p.seed = 9;
  p.rows = 1;
  p.cells_per_row = 4;
  p.routes = 5;
  const Library lib = generate_design(p);
  std::stringstream gds, oasis_ss;
  write_gdsii(lib, gds);
  write_oasis(lib, oasis_ss);
  const Library from_gds = read_gdsii(gds);
  const Library from_oas = read_oasis(oasis_ss);
  const std::string top = lib.cell(lib.top_cells()[0]).name();
  for (const LayerKey k : lib.layers()) {
    EXPECT_EQ(from_gds.flatten(top, k), from_oas.flatten(top, k));
  }
}

TEST(Oasis, OasisIsSmallerThanGdsii) {
  DesignParams p;
  p.seed = 10;
  p.rows = 3;
  p.cells_per_row = 8;
  p.routes = 20;
  const Library lib = generate_design(p);
  std::stringstream gds, oa;
  write_gdsii(lib, gds);
  write_oasis(lib, oa);
  EXPECT_LT(oa.str().size(), gds.str().size())
      << "variable-length integers must beat fixed GDSII records";
}

TEST(Oasis, BadMagicRejected) {
  std::stringstream ss("not an oasis file at all..............");
  EXPECT_THROW(read_oasis(ss), std::runtime_error);
}

TEST(Oasis, UnsupportedRecordRejected) {
  // Valid header followed by a CBLOCK (34) record.
  Library empty{"X"};
  empty.new_cell("c");
  std::stringstream ss;
  write_oasis(empty, ss);
  std::string bytes = ss.str();
  // Remove the END record (last 256 bytes), splice in record 34.
  bytes.resize(bytes.size() - 256);
  bytes.push_back(34);
  std::stringstream bad(bytes);
  EXPECT_THROW(read_oasis(bad), std::runtime_error);
}

TEST(Oasis, FileRoundTrip) {
  const Library lib = sample_lib();
  const std::string path = ::testing::TempDir() + "/dfm_rt.oas";
  write_oasis_file(lib, path);
  const Library back = read_oasis_file(path);
  EXPECT_EQ(back.flatten("top", layers::kMetal1),
            lib.flatten("top", layers::kMetal1));
}

}  // namespace
}  // namespace dfm
