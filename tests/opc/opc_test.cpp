#include "opc/opc.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

OpticalModel model() {
  OpticalModel m;
  m.sigma = 30;
  m.threshold = 0.5;
  m.px = 5;
  return m;
}

TEST(Fragmentation, CoversBoundaryExactly) {
  const Region r{Rect{0, 0, 250, 100}};
  const auto frags = fragment_edges(r, 80);
  Coord total = 0;
  for (const Fragment& f : frags) total += f.seg.length();
  EXPECT_EQ(total, 2 * (250 + 100));
  for (const Fragment& f : frags) {
    EXPECT_LE(f.seg.length(), 80);
    EXPECT_GT(f.seg.length(), 0);
  }
}

TEST(Fragmentation, FragmentsBalanced) {
  // 250 into 80-limit => 4 pieces of 62/63, not 80+80+80+10.
  const Region r{Rect{0, 0, 250, 250}};
  for (const Fragment& f : fragment_edges(r, 80)) {
    EXPECT_GE(f.seg.length(), 62);
  }
}

TEST(ApplyFragments, ZeroOffsetsIdentity) {
  const Region r{Rect{0, 0, 100, 100}};
  const auto frags = fragment_edges(r, 50);
  EXPECT_EQ(apply_fragments(r, frags), r);
}

TEST(ApplyFragments, PositiveOffsetGrows) {
  const Region r{Rect{0, 0, 100, 100}};
  auto frags = fragment_edges(r, 1000);  // 4 whole edges
  for (Fragment& f : frags) f.offset = 10;
  const Region grown = apply_fragments(r, frags);
  EXPECT_TRUE((r - grown).empty());
  // Edges moved out by 10 but corners not filled (serif territory).
  EXPECT_TRUE(grown.contains({-5, 50}));
  EXPECT_TRUE(grown.contains({50, 105}));
  EXPECT_FALSE(grown.contains({-5, -5}));
}

TEST(ApplyFragments, NegativeOffsetShrinks) {
  const Region r{Rect{0, 0, 100, 100}};
  auto frags = fragment_edges(r, 1000);
  for (Fragment& f : frags) f.offset = -10;
  const Region shrunk = apply_fragments(r, frags);
  EXPECT_EQ(shrunk, (Region{Rect{10, 10, 90, 90}}));
}

TEST(ApplyFragments, MixedOffsetsPerEdge) {
  const Region r{Rect{0, 0, 100, 100}};
  auto frags = fragment_edges(r, 1000);
  for (Fragment& f : frags) {
    f.offset = (f.inside == 0) ? 20 : 0;  // grow only the left edge
  }
  const Region out = apply_fragments(r, frags);
  EXPECT_EQ(out, (Region{Rect{-20, 0, 100, 100}}));
}

TEST(RuleOpc, AddsBiasSerifsAndHammerheads) {
  const Region line{Rect{0, 0, 60, 600}};  // 60nm line: ends are "line ends"
  RuleOpcParams p;
  const Region mask = rule_opc(line, p);
  EXPECT_TRUE((line - mask).empty()) << "never removes target";
  // Bias grew the long edges.
  EXPECT_TRUE(mask.contains({-p.bias + 1, 300}));
  // Hammerhead extension on the short end edges.
  EXPECT_TRUE(mask.contains({30, 600 + p.bias + p.line_end_ext - 1}));
  // Serif material at corners.
  EXPECT_TRUE(mask.contains({-p.serif / 2 + 1, 600 + p.serif / 2 - 1}));
}

TEST(RuleOpc, ImprovesLineEndPullback) {
  const OpticalModel m = model();
  const Region line{Rect{0, 0, 80, 800}};
  const Rect w{-200, 400, 280, 1000};
  const Region raw_print = simulate_print(line, w, m);
  const Region opc_print = simulate_print(rule_opc(line, {}), w, m);
  // Line-end pullback: distance from drawn end (y=800) to printed end.
  auto printed_top = [](const Region& r) {
    Coord top = std::numeric_limits<Coord>::min();
    for (const Rect& b : r.rects()) top = std::max(top, b.hi.y);
    return top;
  };
  EXPECT_GT(printed_top(opc_print), printed_top(raw_print));
}

TEST(Epe, StraightIsolatedEdgesHaveNearZeroEpe) {
  const OpticalModel m = model();
  // A wide stripe running through the window: only its long straight
  // edges are measurable; line ends stay outside and are dropped.
  const Region big{Rect{0, -1000, 300, 3000}};
  const Rect w{-150, 400, 450, 1600};
  const EpeStats st = evaluate_epe(big, big, w, m, 100);
  // Straight isolated edges print at the half-intensity point ~ 0 EPE.
  EXPECT_GT(st.measured, 0);
  EXPECT_EQ(st.failed, 0);
  EXPECT_LT(st.mean_abs, 4.0);
}

TEST(ModelOpc, ReducesMeanEpe) {
  const OpticalModel m = model();
  Region target;
  target.add(Rect{0, 0, 90, 700});
  target.add(Rect{200, 0, 290, 700});  // a neighbour for proximity effects
  const Rect w{-150, -150, 440, 850};
  ModelOpcParams p;
  p.model = m;
  p.iterations = 6;
  const OpcResult res = model_opc(target, w, p);
  EXPECT_GT(res.iterations_run, 0);
  EXPECT_LE(res.after.mean_abs, res.before.mean_abs)
      << "model OPC must never return a worse mask than the target";
  EXPECT_LT(res.after.mean_abs, 0.7 * res.before.mean_abs)
      << "and should cut mean |EPE| substantially";
}

TEST(ModelOpc, CorrectedMaskPrintsCloserToTarget) {
  const OpticalModel m = model();
  const Region target{Rect{0, 0, 90, 700}};
  const Rect w{-150, -150, 240, 850};
  ModelOpcParams p;
  p.model = m;
  const OpcResult res = model_opc(target, w, p);
  const Area raw_miss =
      ((simulate_print(target, w, m) ^ target.clipped(w))).area();
  const Area opc_miss =
      ((simulate_print(res.mask, w, m) ^ target.clipped(w))).area();
  EXPECT_LT(opc_miss, raw_miss);
}

TEST(Sraf, InsertedOnlyOnIsolatedEdges) {
  SrafParams p;
  Region dense;
  dense.add(Rect{0, 0, 60, 600});
  dense.add(Rect{120, 0, 180, 600});  // 60nm apart: not isolated
  const Region sr_dense = insert_srafs(dense, p);
  // The two facing edges get no SRAF; the outer edges do.
  for (const Rect& bar : sr_dense.rects()) {
    EXPECT_FALSE((bar.lo.x >= 60 && bar.hi.x <= 120))
        << "no SRAF inside the dense gap";
  }
  const Region iso{Rect{0, 0, 60, 600}};
  const Region sr_iso = insert_srafs(iso, p);
  EXPECT_FALSE(sr_iso.empty());
  // Bars sit at the prescribed offset.
  bool left_bar = false;
  for (const Rect& bar : sr_iso.rects()) {
    if (bar.hi.x == -p.offset) left_bar = true;
  }
  EXPECT_TRUE(left_bar);
}

TEST(Sraf, BarsDoNotPrint) {
  const OpticalModel m = model();
  const Region target{Rect{0, 0, 100, 900}};
  SrafParams p;
  const Region srafs = insert_srafs(target, p);
  ASSERT_FALSE(srafs.empty());
  const Rect w{-300, 200, 400, 700};
  const Region printed = simulate_print(target | srafs, w, m);
  EXPECT_TRUE((printed & (srafs - target.bloated(30)).clipped(w)).empty())
      << "sub-resolution bars must stay below threshold";
}

TEST(Orc, CleanAfterOpcOnSimpleTarget) {
  const OpticalModel m = model();
  const Region target{Rect{0, 0, 120, 800}};
  const Rect w{-200, -100, 320, 900};
  ModelOpcParams p;
  p.model = m;
  const OpcResult res = model_opc(target, w, p);
  const OrcReport rep = run_orc(target, res.mask, Region{}, w, m, 30,
                                {{0.95, 0}, {1.05, 0}});
  EXPECT_TRUE(rep.hotspots.empty());
  EXPECT_FALSE(rep.sraf_prints);
  EXPECT_GT(rep.pv_band_area, 0);
}

TEST(Orc, FlagsPinchOnHopelessTarget) {
  const OpticalModel m = model();
  const Region target{Rect{0, 0, 20, 800}};  // 20nm line cannot print
  const Rect w{-200, -100, 220, 900};
  const OrcReport rep =
      run_orc(target, target, Region{}, w, m, 8, {});
  bool pinch = false;
  for (const Hotspot& h : rep.hotspots) {
    if (h.kind == HotspotKind::kPinch) pinch = true;
  }
  EXPECT_TRUE(pinch);
  EXPECT_GT(rep.epe.failed, 0);
}

}  // namespace
}  // namespace dfm
