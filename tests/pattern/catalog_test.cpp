#include "pattern/catalog.h"

#include "core/snapshot.h"

#include "pattern/divergence.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {


LayerMap via_field_layers(std::uint64_t seed, int count) {
  Library lib{"vf" + std::to_string(seed)};
  const auto c = lib.new_cell("c");
  Rng rng(seed);
  add_via_field(lib.cell(c), rng, Tech::standard(), {0, 0}, count);
  LayerMap m;
  for (const LayerKey k : {layers::kVia1, layers::kMetal1, layers::kMetal2}) {
    m.emplace(k, lib.flatten(c, k));
  }
  return m;
}

TEST(Catalog, CountsSumToWindows) {
  const LayerMap m = via_field_layers(1, 50);
  const PatternCatalog cat = build_catalog(
      LayoutSnapshot(m), {layers::kVia1, layers::kMetal1, layers::kMetal2},
      layers::kVia1, 120);
  EXPECT_EQ(cat.total_windows(), 50u);
  std::uint64_t sum = 0;
  for (const CatalogEntry* e : cat.entries()) sum += e->count;
  EXPECT_EQ(sum, 50u);
  EXPECT_GE(cat.class_count(), 2u);   // several via styles present
  EXPECT_LE(cat.class_count(), 10u);  // but only ~5 styles exist
}

TEST(Catalog, ViaStylesFormDistinctClasses) {
  const Tech& t = Tech::standard();
  Library lib{"v"};
  const auto c = lib.new_cell("c");
  add_via(lib.cell(c), t, {0, 0}, ViaStyle::kSymmetric);
  add_via(lib.cell(c), t, {1000, 0}, ViaStyle::kEndOfLineX);
  add_via(lib.cell(c), t, {2000, 0}, ViaStyle::kCornerL);
  add_via(lib.cell(c), t, {3000, 0}, ViaStyle::kSymmetric);
  LayerMap m;
  for (const LayerKey k : {layers::kVia1, layers::kMetal1, layers::kMetal2}) {
    m.emplace(k, lib.flatten(c, k));
  }
  const PatternCatalog cat = build_catalog(
      LayoutSnapshot(m), {layers::kVia1, layers::kMetal1, layers::kMetal2},
      layers::kVia1, 120);
  EXPECT_EQ(cat.total_windows(), 4u);
  EXPECT_EQ(cat.class_count(), 3u);  // symmetric counted twice
  const auto sorted = cat.by_frequency();
  EXPECT_EQ(sorted[0]->count, 2u);
}

TEST(Catalog, TopKCoverageMonotone) {
  const LayerMap m = via_field_layers(2, 80);
  const PatternCatalog cat = build_catalog(
      LayoutSnapshot(m), {layers::kVia1, layers::kMetal1, layers::kMetal2},
      layers::kVia1, 120);
  double prev = 0.0;
  for (std::size_t k = 0; k <= cat.class_count(); ++k) {
    const double cov = cat.top_k_coverage(k);
    EXPECT_GE(cov, prev);
    prev = cov;
  }
  EXPECT_DOUBLE_EQ(cat.top_k_coverage(cat.class_count()), 1.0);
  EXPECT_DOUBLE_EQ(cat.top_k_coverage(cat.class_count() + 5), 1.0);
}

TEST(Catalog, ClassesForCoverageInverse) {
  const LayerMap m = via_field_layers(3, 60);
  const PatternCatalog cat = build_catalog(
      LayoutSnapshot(m), {layers::kVia1, layers::kMetal1, layers::kMetal2},
      layers::kVia1, 120);
  const std::size_t k90 = cat.classes_for_coverage(0.9);
  EXPECT_GE(cat.top_k_coverage(k90), 0.9);
  if (k90 > 1) {
    EXPECT_LT(cat.top_k_coverage(k90 - 1), 0.9);
  }
}

TEST(Catalog, HeavyTailOnViaFields) {
  // The style mix is heavy-tailed by construction; the catalog must see
  // it: symmetric dominates, top-2 classes cover >= 70%.
  const LayerMap m = via_field_layers(4, 200);
  const PatternCatalog cat = build_catalog(
      LayoutSnapshot(m), {layers::kVia1, layers::kMetal1, layers::kMetal2},
      layers::kVia1, 120);
  EXPECT_GE(cat.top_k_coverage(2), 0.7);
}

TEST(Divergence, SelfIsZero) {
  const LayerMap m = via_field_layers(5, 60);
  const PatternCatalog cat = build_catalog(
      LayoutSnapshot(m), {layers::kVia1, layers::kMetal1, layers::kMetal2},
      layers::kVia1, 120);
  EXPECT_NEAR(kl_divergence(cat, cat), 0.0, 1e-12);
  EXPECT_NEAR(js_divergence(cat, cat), 0.0, 1e-12);
}

TEST(Divergence, NonNegativeAndSensibleOrdering) {
  const LayerMap ma = via_field_layers(6, 100);
  const LayerMap mb = via_field_layers(7, 100);  // same process, new seed
  const std::vector<LayerKey> on = {layers::kVia1, layers::kMetal1,
                                    layers::kMetal2};
  const PatternCatalog a =
      build_catalog(LayoutSnapshot(ma), on, layers::kVia1, 120);
  const PatternCatalog b =
      build_catalog(LayoutSnapshot(mb), on, layers::kVia1, 120);

  // A genuinely different "product": vias on a much denser tech.
  Tech dense = Tech::standard();
  dense.via_enclosure = 30;
  Library lib{"odd"};
  const auto c = lib.new_cell("c");
  Rng rng(8);
  add_via_field(lib.cell(c), rng, dense, {0, 0}, 100);
  LayerMap mc;
  for (const LayerKey k : on) mc.emplace(k, lib.flatten(c, k));
  const PatternCatalog outlier =
      build_catalog(LayoutSnapshot(mc), on, layers::kVia1, 120);

  const double same_process = js_divergence(a, b);
  const double diff_process = js_divergence(a, outlier);
  EXPECT_GE(same_process, 0.0);
  EXPECT_GT(diff_process, same_process)
      << "outlier product must diverge more than a reseeded twin";
  EXPECT_GT(kl_divergence(a, outlier), kl_divergence(a, b));
}

TEST(Divergence, JsIsSymmetricKlIsNot) {
  const std::vector<LayerKey> on = {layers::kVia1, layers::kMetal1,
                                    layers::kMetal2};
  const PatternCatalog a =
      build_catalog(LayoutSnapshot(via_field_layers(9, 40)), on,
                    layers::kVia1, 120);
  const PatternCatalog b =
      build_catalog(LayoutSnapshot(via_field_layers(10, 140)), on,
                    layers::kVia1, 120);
  EXPECT_NEAR(js_divergence(a, b), js_divergence(b, a), 1e-12);
  // KL is generally asymmetric; just require both directions finite & >= 0.
  EXPECT_GE(kl_divergence(a, b), 0.0);
  EXPECT_GE(kl_divergence(b, a), 0.0);
}

TEST(Catalog, AssociationEdgesPointToCoarserInCatalogPatterns) {
  PatternCatalog cat;
  // Insert a fine pattern and its own generalizations explicitly.
  Region r;
  r.add(Rect{20, 20, 40, 80});
  r.add(Rect{60, 20, 80, 80});
  const Rect w{0, 0, 100, 100};
  const TopologicalPattern fine =
      TopologicalPattern::capture({{layers::kMetal1, r.clipped(w)}}, w);
  cat.insert(fine, {0, 0});
  for (const TopologicalPattern& g : fine.generalizations()) {
    cat.insert(g, {0, 0});
  }
  const auto edges = cat.association_edges();
  // Every generalization of `fine` that landed in the catalog produces an
  // edge from fine.
  int from_fine = 0;
  for (const auto& [child, parent] : edges) {
    if (child == fine.hash()) ++from_fine;
  }
  EXPECT_GT(from_fine, 0);
}

TEST(Catalog, ExemplarsAreCapped) {
  PatternCatalog cat;
  const TopologicalPattern p = TopologicalPattern::capture(
      {{layers::kMetal1, Region{Rect{10, 10, 20, 20}}}}, Rect{0, 0, 100, 100});
  for (int i = 0; i < 100; ++i) {
    cat.insert(p, Point{i, i});
  }
  const CatalogEntry* e = cat.find(p);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 100u);
  EXPECT_EQ(e->exemplars.size(), PatternCatalog::kMaxExemplars);
}

}  // namespace
}  // namespace dfm
