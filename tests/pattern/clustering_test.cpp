#include "pattern/clustering.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

Snippet make_snippet(const Region& r, Point at) {
  return Snippet{r.translated(at), at};
}

TEST(SnippetDistance, IdenticalIsZero) {
  const Region a{Rect{0, 0, 50, 50}};
  EXPECT_DOUBLE_EQ(snippet_distance(a, a), 0.0);
  // Translation-invariant.
  EXPECT_DOUBLE_EQ(snippet_distance(a, a.translated({1000, -300})), 0.0);
}

TEST(SnippetDistance, DisjointAfterAlignmentIsHigh) {
  // Same bbox center but opposite quadrant content.
  Region a;
  a.add(Rect{0, 0, 40, 40});
  a.add(Rect{90, 90, 100, 100});  // pins the bbox
  Region b;
  b.add(Rect{60, 60, 100, 100});
  b.add(Rect{0, 0, 10, 10});
  const double d = snippet_distance(a, b);
  EXPECT_GT(d, 0.8);
  EXPECT_LE(d, 1.0);
}

TEST(SnippetDistance, EmptyCases) {
  const Region none;
  const Region some{Rect{0, 0, 10, 10}};
  EXPECT_DOUBLE_EQ(snippet_distance(none, none), 0.0);
  EXPECT_DOUBLE_EQ(snippet_distance(none, some), 1.0);
  EXPECT_DOUBLE_EQ(snippet_distance(some, none), 1.0);
}

TEST(SnippetDistance, SymmetricAndBounded) {
  Region a;
  a.add(Rect{0, 0, 30, 60});
  Region b;
  b.add(Rect{0, 0, 30, 50});
  b.add(Rect{40, 0, 60, 20});
  EXPECT_NEAR(snippet_distance(a, b), snippet_distance(b, a), 1e-12);
  EXPECT_GE(snippet_distance(a, b), 0.0);
  EXPECT_LE(snippet_distance(a, b), 1.0);
}

std::vector<Snippet> three_families() {
  std::vector<Snippet> s;
  const Region bar{Rect{0, 0, 100, 20}};
  const Region square{Rect{0, 0, 50, 50}};
  Region ell;
  ell.add(Rect{0, 0, 80, 20});
  ell.add(Rect{0, 20, 20, 80});
  for (int i = 0; i < 4; ++i) {
    s.push_back(make_snippet(bar, {i * 1000, 0}));
    s.push_back(make_snippet(square, {i * 1000, 5000}));
    s.push_back(make_snippet(ell, {i * 1000, 9000}));
  }
  return s;
}

TEST(LeaderCluster, GroupsIdenticalFamilies) {
  const auto snippets = three_families();
  const auto clusters = leader_cluster(snippets, 0.1);
  ASSERT_EQ(clusters.size(), 3u);
  std::size_t total = 0;
  for (const auto& c : clusters) {
    EXPECT_EQ(c.members.size(), 4u);
    total += c.members.size();
  }
  EXPECT_EQ(total, snippets.size());
}

TEST(LeaderCluster, ThresholdOneMergesEverything) {
  const auto snippets = three_families();
  EXPECT_EQ(leader_cluster(snippets, 1.0).size(), 1u);
}

TEST(LeaderCluster, ThresholdZeroKeepsOnlyExactDuplicatesTogether) {
  const auto snippets = three_families();
  EXPECT_EQ(leader_cluster(snippets, 0.0).size(), 3u);  // exact copies merge
}

TEST(LeaderCluster, EmptyInput) {
  EXPECT_TRUE(leader_cluster({}, 0.5).empty());
}

TEST(Agglomerative, MatchesLeaderOnWellSeparatedFamilies) {
  const auto snippets = three_families();
  const auto clusters = agglomerative_cluster(snippets, 0.1);
  ASSERT_EQ(clusters.size(), 3u);
  for (const auto& c : clusters) {
    EXPECT_EQ(c.members.size(), 4u);
    // Representative is a member.
    EXPECT_NE(std::find(c.members.begin(), c.members.end(), c.representative),
              c.members.end());
  }
}

TEST(Agglomerative, NearDuplicatesMergeNoiseStaysOut) {
  std::vector<Snippet> s;
  const Region bar{Rect{0, 0, 100, 20}};
  Region bar_jitter;
  bar_jitter.add(Rect{0, 0, 100, 21});  // tiny variation
  s.push_back(make_snippet(bar, {0, 0}));
  s.push_back(make_snippet(bar_jitter, {1000, 0}));
  s.push_back(make_snippet(Region{Rect{0, 0, 20, 100}}, {2000, 0}));  // rotated bar
  const auto clusters = agglomerative_cluster(s, 0.2);
  ASSERT_EQ(clusters.size(), 2u);
}

TEST(Agglomerative, SingleSnippet) {
  std::vector<Snippet> s{make_snippet(Region{Rect{0, 0, 10, 10}}, {0, 0})};
  const auto clusters = agglomerative_cluster(s, 0.5);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].representative, 0u);
}

}  // namespace
}  // namespace dfm
