#include "pattern/matcher.h"

#include "core/snapshot.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

TopologicalPattern single(const Region& r, const Rect& w) {
  return TopologicalPattern::capture({{layers::kMetal1, r.clipped(w)}}, w);
}

TEST(Matcher, ExactMatchFires) {
  Region r;
  r.add(Rect{20, 40, 80, 60});
  const Rect w{0, 0, 100, 100};
  PatternMatcher m({PatternRule{"bar", single(r, w), 0, "widen the bar"}});

  std::vector<CapturedPattern> windows;
  windows.push_back(CapturedPattern{single(r.translated({500, 0}),
                                           w.translated({500, 0})),
                                    w.translated({500, 0}),
                                    Point{550, 50}});
  const auto matches = m.scan(windows);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].rule_index, 0u);
  EXPECT_TRUE(matches[0].exact);
}

TEST(Matcher, NoFalsePositives) {
  const Rect w{0, 0, 100, 100};
  PatternMatcher m(
      {PatternRule{"bar", single(Region{Rect{20, 40, 80, 60}}, w), 0, ""}});
  std::vector<CapturedPattern> windows;
  windows.push_back(
      CapturedPattern{single(Region{Rect{20, 20, 40, 80}}, w), w, {50, 50}});
  EXPECT_TRUE(m.scan(windows).empty());
}

TEST(Matcher, MatchesRotatedInstances) {
  Region l;
  l.add(Rect{10, 10, 80, 30});
  l.add(Rect{10, 30, 30, 90});
  const Rect w{0, 0, 100, 100};
  PatternMatcher m({PatternRule{"L", single(l, w), 0, ""}});
  for (Orient o : kAllOrients) {
    const Transform t{o, {300, 700}};
    const Rect tw = t.apply(w);
    std::vector<CapturedPattern> windows{{single(l.transformed(t), tw), tw,
                                          tw.center()}};
    EXPECT_EQ(m.scan(windows).size(), 1u) << static_cast<int>(o);
  }
}

TEST(Matcher, ToleranceAcceptsNearbyDimensions) {
  const Rect w{0, 0, 100, 100};
  const TopologicalPattern rule = single(Region{Rect{40, 40, 60, 60}}, w);
  PatternMatcher exact({PatternRule{"sq", rule, 0, ""}});
  PatternMatcher tol({PatternRule{"sq", rule, 5, ""}});

  std::vector<CapturedPattern> windows{
      {single(Region{Rect{42, 40, 62, 60}}, w), w, {50, 50}}};  // shifted 2
  EXPECT_TRUE(exact.scan(windows).empty());
  const auto matches = tol.scan(windows);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_FALSE(matches[0].exact);
}

TEST(Matcher, ToleranceRejectsBeyondBound) {
  const Rect w{0, 0, 100, 100};
  const TopologicalPattern rule = single(Region{Rect{40, 40, 60, 60}}, w);
  PatternMatcher tol({PatternRule{"sq", rule, 5, ""}});
  std::vector<CapturedPattern> windows{
      {single(Region{Rect{20, 40, 40, 60}}, w), w, {50, 50}}};  // shifted 20
  EXPECT_TRUE(tol.scan(windows).empty());
}

TEST(Matcher, ToleranceRequiresSameTopology) {
  const Rect w{0, 0, 100, 100};
  const TopologicalPattern rule = single(Region{Rect{40, 40, 60, 60}}, w);
  PatternMatcher tol({PatternRule{"sq", rule, 50, ""}});
  Region two;
  two.add(Rect{10, 40, 30, 60});
  two.add(Rect{70, 40, 90, 60});
  std::vector<CapturedPattern> windows{{single(two, w), w, {50, 50}}};
  EXPECT_TRUE(tol.scan(windows).empty());
}

TEST(Matcher, ScanAnchorsFindsInjectedViaStyle) {
  // Library rule: the borderless via pattern; target: a via field.
  const Tech& t = Tech::standard();
  Library ref{"ref"};
  const auto rc = ref.new_cell("c");
  add_via(ref.cell(rc), t, {0, 0}, ViaStyle::kBorderless);
  LayerMap rm;
  const std::vector<LayerKey> on = {layers::kVia1, layers::kMetal1,
                                    layers::kMetal2};
  for (const LayerKey k : on) rm.emplace(k, ref.flatten(rc, k));
  const auto ref_caps =
      capture_at_anchors(LayoutSnapshot(rm), on, layers::kVia1, 120);
  ASSERT_EQ(ref_caps.size(), 1u);
  PatternMatcher m({PatternRule{"borderless", ref_caps[0].pattern, 0,
                                "add metal enclosure"}});

  Library tgt{"tgt"};
  const auto tc = tgt.new_cell("c");
  int expected = 0;
  for (int i = 0; i < 12; ++i) {
    const ViaStyle s = (i % 4 == 0) ? ViaStyle::kBorderless : ViaStyle::kSymmetric;
    if (i % 4 == 0) ++expected;
    add_via(tgt.cell(tc), t, {i * 1000, 0}, s);
  }
  LayerMap tm;
  for (const LayerKey k : on) tm.emplace(k, tgt.flatten(tc, k));
  const auto matches =
      m.scan_anchors(LayoutSnapshot(tm), on, layers::kVia1, 120);
  EXPECT_EQ(static_cast<int>(matches.size()), expected);
}

TEST(Matcher, MultipleRulesOneWindow) {
  const Rect w{0, 0, 100, 100};
  const TopologicalPattern p = single(Region{Rect{40, 40, 60, 60}}, w);
  PatternMatcher m({PatternRule{"a", p, 0, ""}, PatternRule{"b", p, 5, ""}});
  std::vector<CapturedPattern> windows{{p, w, {50, 50}}};
  const auto matches = m.scan(windows);
  EXPECT_EQ(matches.size(), 2u);  // exact on both ("b" via exact index)
}

}  // namespace
}  // namespace dfm
