// Property sweeps for the pattern engine on random layout windows.
#include "pattern/capture.h"

#include "core/parallel.h"
#include "gen/rng.h"
#include "pattern/catalog.h"
#include "pattern/divergence.h"

#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <utility>

#include <algorithm>
#include <random>

namespace dfm {
namespace {

Region random_clip(Rng& rng, const Rect& window, int shapes) {
  Region r;
  for (int i = 0; i < shapes; ++i) {
    const Coord x = rng.uniform(window.lo.x, window.hi.x - 10);
    const Coord y = rng.uniform(window.lo.y, window.hi.y - 10);
    const Coord w = rng.uniform(10, window.width() / 3);
    const Coord h = rng.uniform(10, window.height() / 3);
    r.add(Rect{x, y, std::min(x + w, window.hi.x), std::min(y + h, window.hi.y)});
  }
  return r;
}

class PatternProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PatternProperty, CanonicalFormInvariantUnderD4AndTranslation) {
  Rng rng(GetParam());
  const Rect window{0, 0, 400, 400};
  const Region clip = random_clip(rng, window, 6);
  const TopologicalPattern base =
      TopologicalPattern::capture({{layers::kMetal1, clip}}, window);

  for (const Orient o : kAllOrients) {
    for (const Point shift : {Point{0, 0}, Point{1234, -777}}) {
      const Transform t{o, shift};
      const Region moved = clip.transformed(t);
      const Rect mwindow = t.apply(window);
      const TopologicalPattern p =
          TopologicalPattern::capture({{layers::kMetal1, moved}}, mwindow);
      ASSERT_EQ(p, base) << "orient " << static_cast<int>(o);
      ASSERT_EQ(p.hash(), base.hash());
    }
  }
}

TEST_P(PatternProperty, CoverageMatchesGeometry) {
  Rng rng(GetParam() * 13 + 5);
  const Rect window{0, 0, 300, 300};
  const Region clip = random_clip(rng, window, 5);
  const TopologicalPattern p =
      TopologicalPattern::capture({{layers::kMetal1, clip}}, window);
  const double expect = static_cast<double>(clip.area()) /
                        static_cast<double>(window.area());
  EXPECT_NEAR(p.coverage(0), expect, 1e-12);
}

TEST_P(PatternProperty, GeneralizationNeverLosesCoverage) {
  Rng rng(GetParam() * 101 + 3);
  const Rect window{0, 0, 300, 300};
  const Region clip = random_clip(rng, window, 4);
  const TopologicalPattern p =
      TopologicalPattern::capture({{layers::kMetal1, clip}}, window);
  for (const TopologicalPattern& g : p.generalizations()) {
    // OR-merging cells can only grow covered area.
    EXPECT_GE(g.coverage(0), p.coverage(0) - 1e-12);
    EXPECT_EQ(g.cell_count() < p.cell_count(), true);
  }
}

TEST_P(PatternProperty, GridCaptureWindowsAreDeterministic) {
  Rng rng(GetParam() * 7 + 1);
  const Rect extent{0, 0, 1200, 1200};
  const Region clip = random_clip(rng, extent, 10);
  LayerMap layers;
  layers.emplace(layers::kMetal1, clip);
  const LayoutSnapshot snap(std::move(layers));
  const auto a = capture_grid(snap, {layers::kMetal1}, extent, 300, 150);
  const auto b = capture_grid(snap, {layers::kMetal1}, extent, 300, 150);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pattern.hash(), b[i].pattern.hash());
    EXPECT_EQ(a[i].window, b[i].window);
  }
}

TEST_P(PatternProperty, CatalogIsInvariantUnderCaptureOrder) {
  // Randomized stress: a catalog built from N windows inserted in
  // shuffled order must equal the serially built one in every
  // order-independent statistic (the class histogram is the canonical
  // key -> count map, and a distribution identical to itself has zero
  // divergence).
  Rng rng(GetParam() * 17 + 11);
  const Rect extent{0, 0, 2400, 2400};
  const Region clip = random_clip(rng, extent, 40);
  LayerMap layers;
  layers.emplace(layers::kMetal1, clip);
  const auto captured = capture_grid(LayoutSnapshot(std::move(layers)),
                                     {layers::kMetal1}, extent, 300, 120);
  ASSERT_GT(captured.size(), 10u);

  PatternCatalog serial;
  serial.insert(captured);

  auto shuffled = captured;
  std::mt19937_64 shuffle_rng(GetParam());
  std::shuffle(shuffled.begin(), shuffled.end(), shuffle_rng);
  PatternCatalog reordered;
  reordered.insert(shuffled);

  EXPECT_EQ(reordered.total_windows(), serial.total_windows());
  EXPECT_EQ(reordered.class_count(), serial.class_count());
  EXPECT_EQ(reordered.histogram(), serial.histogram());
  EXPECT_EQ(reordered.top_k_coverage(10), serial.top_k_coverage(10));
  EXPECT_DOUBLE_EQ(kl_divergence(serial, reordered), 0.0);
  EXPECT_DOUBLE_EQ(kl_divergence(reordered, serial), 0.0);
  EXPECT_DOUBLE_EQ(kl_divergence(serial, serial), 0.0);
}

TEST_P(PatternProperty, ParallelCaptureEqualsSerialCapture) {
  // The pool-driven capture must not just be statistically equal — the
  // deterministic merge keeps window order, so the captured vectors and
  // the resulting catalogs (exemplars included) are identical.
  Rng rng(GetParam() * 29 + 7);
  const Rect extent{0, 0, 2000, 2000};
  const Region clip = random_clip(rng, extent, 30);
  LayerMap layers;
  layers.emplace(layers::kMetal1, clip);

  ThreadPool pool(4);
  const LayoutSnapshot snap(std::move(layers));
  const auto serial = capture_grid(snap, {layers::kMetal1}, extent, 250, 125);
  const auto parallel = capture_grid(snap, {layers::kMetal1}, extent, 250, 125,
                                     /*keep_empty=*/false, &pool);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(parallel[i].pattern.hash(), serial[i].pattern.hash());
    ASSERT_EQ(parallel[i].window, serial[i].window);
    ASSERT_EQ(parallel[i].anchor, serial[i].anchor);
  }

  PatternCatalog cat_serial;
  cat_serial.insert(serial);
  PatternCatalog cat_parallel;
  cat_parallel.insert(parallel);
  EXPECT_EQ(cat_parallel.histogram(), cat_serial.histogram());
  EXPECT_DOUBLE_EQ(kl_divergence(cat_serial, cat_parallel), 0.0);
  const auto es = cat_serial.by_frequency();
  const auto ep = cat_parallel.by_frequency();
  ASSERT_EQ(ep.size(), es.size());
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(ep[i]->count, es[i]->count);
    EXPECT_EQ(ep[i]->exemplars, es[i]->exemplars);  // order-exact merge
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternProperty, ::testing::Range(1u, 11u));

}  // namespace
}  // namespace dfm
