#include "pattern/topology.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

TopologicalPattern capture_single(const Region& r, const Rect& window) {
  return TopologicalPattern::capture({{layers::kMetal1, r.clipped(window)}},
                                     window);
}

TEST(Topology, EmptyWindow) {
  const TopologicalPattern p = capture_single(Region{}, Rect{0, 0, 100, 100});
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.cell_count(), 1u);
  EXPECT_DOUBLE_EQ(p.coverage(0), 0.0);
}

TEST(Topology, FullWindow) {
  const TopologicalPattern p =
      capture_single(Region{Rect{-10, -10, 200, 200}}, Rect{0, 0, 100, 100});
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.cell_count(), 1u);
  EXPECT_DOUBLE_EQ(p.coverage(0), 1.0);
}

TEST(Topology, CentralSquareMakesNineCells) {
  const TopologicalPattern p =
      capture_single(Region{Rect{40, 40, 60, 60}}, Rect{0, 0, 100, 100});
  EXPECT_EQ(p.cell_count(), 9u);
  EXPECT_DOUBLE_EQ(p.coverage(0), 0.04);  // 20x20 in 100x100
}

TEST(Topology, TranslationInvariance) {
  const Region r{Rect{40, 40, 60, 60}};
  const TopologicalPattern a = capture_single(r, Rect{0, 0, 100, 100});
  const TopologicalPattern b =
      capture_single(r.translated({1000, -500}), Rect{1000, -500, 1100, -400});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Topology, AllOrientationsCanonicalizeIdentically) {
  // An asymmetric L in the window.
  Region r;
  r.add(Rect{10, 10, 80, 30});
  r.add(Rect{10, 30, 30, 90});
  const Rect window{0, 0, 100, 100};
  const TopologicalPattern base = capture_single(r, window);
  for (Orient o : kAllOrients) {
    const Transform t{o, {0, 0}};
    const Region moved = r.transformed(t);
    const Rect w = t.apply(window);
    const TopologicalPattern rotated = capture_single(moved, w);
    EXPECT_EQ(base, rotated) << "orient " << static_cast<int>(o);
  }
}

TEST(Topology, DifferentTopologyDifferentPattern) {
  const TopologicalPattern one =
      capture_single(Region{Rect{40, 40, 60, 60}}, Rect{0, 0, 100, 100});
  Region two;
  two.add(Rect{10, 40, 30, 60});
  two.add(Rect{70, 40, 90, 60});
  const TopologicalPattern twop = capture_single(two, Rect{0, 0, 100, 100});
  EXPECT_NE(one, twop);
}

TEST(Topology, SameTopologyDifferentDimsDifferentPattern) {
  const TopologicalPattern a =
      capture_single(Region{Rect{40, 40, 60, 60}}, Rect{0, 0, 100, 100});
  const TopologicalPattern b =
      capture_single(Region{Rect{30, 30, 70, 70}}, Rect{0, 0, 100, 100});
  EXPECT_NE(a, b);
  // But their topology hashes agree.
  EXPECT_EQ(topology_hash(a.canonical()), topology_hash(b.canonical()));
}

TEST(Topology, MultiLayerAlignmentMatters) {
  const Rect window{0, 0, 100, 100};
  const Region via{Rect{40, 40, 60, 60}};
  const Region m1a{Rect{30, 30, 70, 70}};   // centered enclosure
  const Region m1b{Rect{40, 30, 80, 70}};   // shifted enclosure
  const TopologicalPattern a = TopologicalPattern::capture(
      {{layers::kVia1, via}, {layers::kMetal1, m1a}}, window);
  const TopologicalPattern b = TopologicalPattern::capture(
      {{layers::kVia1, via}, {layers::kMetal1, m1b}}, window);
  EXPECT_NE(a, b);
}

TEST(Topology, GeneralizationReducesCells) {
  const TopologicalPattern p =
      capture_single(Region{Rect{40, 40, 60, 60}}, Rect{0, 0, 100, 100});
  const auto gens = p.generalizations();
  // 3x3 grid: two interior x-cuts + two interior y-cuts = 4 merges.
  ASSERT_EQ(gens.size(), 4u);
  for (const TopologicalPattern& g : gens) {
    EXPECT_LT(g.cell_count(), p.cell_count());
    EXPECT_FALSE(g.empty());  // OR-merge keeps material
  }
}

TEST(Topology, GeneralizationOfUniformWindowIsEmptySet) {
  const TopologicalPattern p =
      capture_single(Region{Rect{0, 0, 100, 100}}, Rect{0, 0, 100, 100});
  EXPECT_TRUE(p.generalizations().empty());  // single cell, nothing to merge
}

TEST(Topology, AsciiArtShowsBitmap) {
  const TopologicalPattern p =
      capture_single(Region{Rect{40, 40, 60, 60}}, Rect{0, 0, 100, 100});
  const std::string art = p.to_ascii();
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(Topology, OrientationEnumerationHas8Unique) {
  Region r;
  r.add(Rect{10, 10, 80, 30});
  r.add(Rect{10, 30, 30, 90});
  const TopologicalPattern p = capture_single(r, Rect{0, 0, 100, 100});
  const auto os = all_orientations(p.canonical());
  ASSERT_EQ(os.size(), 8u);
  // The asymmetric L has 8 distinct orientation encodings.
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      EXPECT_NE(os[i], os[j]) << i << "," << j;
    }
  }
  // The canonical form is the minimum.
  for (const auto& o : os) {
    EXPECT_LE(p.canonical(), o);
  }
}

class TopologyHashStability : public ::testing::TestWithParam<unsigned> {};

TEST_P(TopologyHashStability, HashCollisionFreeOnDistinctSmallPatterns) {
  // Enumerate 2x2-cell patterns with varying fills; all must have
  // distinct canonical hashes unless D4-equivalent.
  std::vector<TopologicalPattern> pats;
  const unsigned mask = GetParam();
  for (unsigned m = 0; m <= 0xF; ++m) {
    Region r;
    if (m & 1) r.add(Rect{0, 0, 50, 50});
    if (m & 2) r.add(Rect{50, 0, 100, 50});
    if (m & 4) r.add(Rect{0, 50, 50, 100});
    if (m & 8) r.add(Rect{50, 50, 100, 100});
    pats.push_back(capture_single(r, Rect{0, 0, 100, 100}));
    (void)mask;
  }
  for (std::size_t i = 0; i < pats.size(); ++i) {
    for (std::size_t j = i + 1; j < pats.size(); ++j) {
      if (pats[i] == pats[j]) {
        EXPECT_EQ(pats[i].hash(), pats[j].hash());
      } else {
        EXPECT_NE(pats[i].hash(), pats[j].hash());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(One, TopologyHashStability, ::testing::Values(0u));

}  // namespace
}  // namespace dfm
