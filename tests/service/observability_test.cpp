// The service observability plane (protocol v3): trace-context
// propagation from client to server spans, the metrics op's Prometheus
// text + JSON expositions with per-op latency histograms, the flight
// recorder drained through the debug op, the slow-request threshold,
// and trace-merge stitching a client + server Chrome trace pair into
// one timeline with the server span nested under its client parent.
#include "service/server.h"

#include "core/telemetry.h"
#include "gdsii/gdsii.h"
#include "gen/generators.h"
#include "service/client.h"
#include "service/trace_merge.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <unistd.h>

namespace dfm::service {
namespace {

namespace telem = ::dfm::telemetry;

const std::vector<std::string> kFastPasses = {"drc", "nets", "vias", "caa"};

std::string demo_gds() {
  static const std::string path = [] {
    DesignParams p;
    p.seed = 3;
    p.rows = 2;
    p.cells_per_row = 5;
    p.routes = 10;
    const std::string out = ::testing::TempDir() + "dfm_obs_demo_" +
                            std::to_string(::getpid()) + ".gds";
    write_gdsii_file(generate_design(p), out);
    return out;
  }();
  return path;
}

ServiceOptions base_options(const std::string& tag) {
  ServiceOptions opt;
  opt.unix_path = ::testing::TempDir() + "dfm_obs_" + tag + "_" +
                  std::to_string(::getpid()) + ".sock";
  opt.workers = 2;
  opt.pool_threads = 2;
  opt.flow.passes = kFastPasses;
  return opt;
}

/// Leaves telemetry the way it found it: other service tests assert on
/// byte-identical wire traffic, which an open recording epoch would
/// perturb (a traced client adds trace_id fields to its requests).
class Observability : public ::testing::Test {
 protected:
  void SetUp() override {
    telem::set_enabled(false);
    telem::clear();
    telem::reset_metrics();
  }
  void TearDown() override {
    telem::set_enabled(false);
    telem::clear();
    telem::reset_metrics();
  }
};

TEST_F(Observability, TraceContextPropagatesAndIsEchoed) {
  if (!telem::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  ServiceServer server(base_options("trace"));
  server.start();

  telem::set_enabled(true);
  ServiceClient client = ServiceClient::connect_unix(
      server.options().unix_path);
  const Json opened = client.open(demo_gds());
  telem::set_enabled(false);

  // The client minted a stable per-connection trace id...
  ASSERT_EQ(client.trace_id().size(), 32u);
  // ...and the server echoed its span alongside the payload.
  const Json* trace = opened.find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_GT(trace->get_int("span_id", 0), 0);
  EXPECT_GE(trace->get_int("end_ns", 0), trace->get_int("start_ns", -1));

  // The flight recorder captured the same trace id and parent span.
  const Json debug = client.debug();
  const Json* requests = debug.find("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_FALSE(requests->as_array().empty());
  const Json& rec = requests->as_array().front();  // newest first
  EXPECT_EQ(rec.get_string("op", ""), "open");
  EXPECT_EQ(rec.get_string("trace_id", ""), client.trace_id());
  EXPECT_GT(rec.get_int("parent_span", 0), 0);

  // The client-side span carries the id the server parented under.
  const telem::TraceSnapshot snap = telem::drain();
  bool found = false;
  for (const telem::ThreadTrace& t : snap.threads) {
    for (const telem::SpanEvent& e : t.events) {
      if (std::string(e.name) != "client/request") continue;
      found = true;
      EXPECT_EQ(static_cast<std::int64_t>(e.id),
                rec.get_int("parent_span", 0));
    }
  }
  EXPECT_TRUE(found);

  client.close_session(opened.get_string("session", ""));
  server.request_shutdown();
  server.wait();
}

TEST_F(Observability, UntracedClientSendsNoTraceFields) {
  ServiceServer server(base_options("untraced"));
  server.start();
  ServiceClient client = ServiceClient::connect_unix(
      server.options().unix_path);
  client.ping();
  EXPECT_TRUE(client.trace_id().empty());
  const Json opened = client.open(demo_gds());
  // No recording epoch -> no trace context on the wire, no echo back.
  EXPECT_EQ(opened.find("trace"), nullptr);
  client.close_session(opened.get_string("session", ""));
  server.request_shutdown();
  server.wait();
}

TEST_F(Observability, MetricsOpExposesPerOpHistograms) {
  ServiceServer server(base_options("metrics"));
  server.start();
  ServiceClient client = ServiceClient::connect_unix(
      server.options().unix_path);
  const Json opened = client.open(demo_gds());
  client.flow(opened.get_string("session", ""));

  const Json metrics = client.metrics();
  ASSERT_TRUE(metrics.get_bool("ok", false));
  const std::string text = metrics.get_string("text", "");
  const Json exposition = Json::parse(metrics.get_string("json", "{}"));

  if (telem::compiled_in()) {
    EXPECT_TRUE(metrics.get_bool("telemetry", false));
    // Per-op latency series, in both expositions of the one snapshot.
    EXPECT_NE(text.find("# TYPE service_op_open_request_ms histogram"),
              std::string::npos);
    EXPECT_NE(text.find("service_op_flow_request_ms_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("service_op_open_queue_wait_ms_count 1"),
              std::string::npos);
    const Json* hists = exposition.find("histograms");
    ASSERT_NE(hists, nullptr);
    const Json* open_hist = hists->find("service.op.open.request_ms");
    ASSERT_NE(open_hist, nullptr);
    EXPECT_EQ(open_hist->get_int("total", 0), 1);
    EXPECT_EQ(open_hist->find("bounds")->as_array().size() + 1,
              open_hist->find("counts")->as_array().size());
  } else {
    EXPECT_FALSE(metrics.get_bool("telemetry", true));
  }

  client.close_session(opened.get_string("session", ""));
  server.request_shutdown();
  server.wait();
}

TEST_F(Observability, DebugOpDrainsFlightRecorderNewestFirst) {
  ServiceOptions opt = base_options("flight");
  opt.flight_records = 8;
  ServiceServer server(std::move(opt));
  server.start();
  ServiceClient client = ServiceClient::connect_unix(
      server.options().unix_path);

  const Json opened = client.open(demo_gds());
  const std::string session = opened.get_string("session", "");
  client.flow(session);
  // A failing request is recorded with its error code as the outcome.
  EXPECT_THROW(client.flow("no-such-session"), ServiceError);
  client.close_session(session);

  const Json debug = client.debug();
  ASSERT_TRUE(debug.get_bool("ok", false));
  EXPECT_EQ(debug.get_int("capacity", 0), 8);
  EXPECT_EQ(debug.get_int("recorded", 0), 4);
  const Json* requests = debug.find("requests");
  ASSERT_NE(requests, nullptr);
  const Json::Array& recs = requests->as_array();
  ASSERT_EQ(recs.size(), 4u);
  // Newest first: close, failed flow, flow, open.
  EXPECT_EQ(recs[0].get_string("op", ""), "close");
  EXPECT_EQ(recs[1].get_string("op", ""), "flow");
  EXPECT_EQ(recs[1].get_string("outcome", ""), errc::kUnknownSession);
  EXPECT_EQ(recs[2].get_string("op", ""), "flow");
  EXPECT_EQ(recs[2].get_string("outcome", ""), "ok");
  EXPECT_EQ(recs[3].get_string("op", ""), "open");
  for (std::size_t i = 0; i + 1 < recs.size(); ++i) {
    EXPECT_GT(recs[i].get_int("seq", 0), recs[i + 1].get_int("seq", 0));
  }
  // The "n" knob clamps to what was asked for.
  const Json two = client.debug(2);
  EXPECT_EQ(two.find("requests")->as_array().size(), 2u);

  server.request_shutdown();
  server.wait();
}

TEST_F(Observability, SlowRequestThresholdCountsAndLogs) {
  ServiceOptions opt = base_options("slow");
  opt.enable_debug_ops = true;  // the sleep op
  opt.slow_request_ms = 5;
  ServiceServer server(std::move(opt));
  server.start();
  ServiceClient client = ServiceClient::connect_unix(
      server.options().unix_path);

  client.call_ok(Json(Json::Object{{"op", Json("sleep")}, {"ms", Json(20)}}));
  const Json stats = client.stats();
  EXPECT_EQ(stats.get_int("slow_requests", 0), 1);
  // A fast request does not trip the threshold.
  client.call_ok(Json(Json::Object{{"op", Json("sleep")}, {"ms", Json(0)}}));
  EXPECT_EQ(client.stats().get_int("slow_requests", 0), 1);

  server.request_shutdown();
  server.wait();
}

TEST_F(Observability, TraceMergeNestsServerUnderClientSpan) {
  // Synthetic client trace: one traced request span, id 7.
  telem::TraceSnapshot client_snap;
  client_snap.epoch_ns = 0;
  telem::ThreadTrace ct;
  ct.tid = 0;
  ct.name = "client";
  ct.events.push_back(
      telem::SpanEvent{"client/request", 1'000'000, 5'000'000, 1, 0, 7, 0});
  client_snap.threads.push_back(std::move(ct));

  // Synthetic server trace on a clock ~95 ms ahead: the request span
  // parents under client span 7 and wraps one pass span.
  telem::TraceSnapshot server_snap;
  server_snap.epoch_ns = 0;
  telem::ThreadTrace st;
  st.tid = 1;
  st.name = "exec 0";
  st.events.push_back(telem::SpanEvent{"flow/drc", 100'500'000, 101'500'000,
                                       0, 1});
  st.events.push_back(telem::SpanEvent{"service/request", 100'000'000,
                                       102'000'000, 1, 0, 9, 7});
  server_snap.threads.push_back(std::move(st));

  const std::string client_json =
      telem::chrome_trace_json(client_snap, telem::MetricsSnapshot{});
  const std::string server_json =
      telem::chrome_trace_json(server_snap, telem::MetricsSnapshot{});

  TraceMergeStats stats;
  const std::string merged =
      merge_chrome_traces(client_json, server_json, &stats);

  EXPECT_EQ(stats.client_events, 1u);
  EXPECT_EQ(stats.server_events, 2u);
  EXPECT_EQ(stats.linked_requests, 1u);
  EXPECT_EQ(stats.nested, 1u);
  // Midpoint alignment: client center 3 ms, server center 101 ms.
  EXPECT_NEAR(stats.offset_us, -98'000.0, 1.0);

  // The merged trace parses, keeps both processes, and links them with
  // a flow arrow pair.
  const Json doc = Json::parse(merged);
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  double client_start = 0, client_end = 0, server_start = 0, server_end = 0;
  int arrows = 0;
  for (const Json& e : events->as_array()) {
    const std::string ph = e.get_string("ph", "");
    if (ph == "s" || ph == "f") ++arrows;
    if (ph != "X") continue;
    const std::string name = e.get_string("name", "");
    const double ts = e.find("ts")->as_double();
    const double dur = e.find("dur")->as_double();
    if (name == "client/request") {
      EXPECT_EQ(e.get_int("pid", 0), 1);
      client_start = ts;
      client_end = ts + dur;
    } else if (name == "service/request") {
      EXPECT_EQ(e.get_int("pid", 0), 2);
      server_start = ts;
      server_end = ts + dur;
    }
  }
  EXPECT_EQ(arrows, 2);
  // The acceptance gate: after clock alignment the server request span
  // (and with it every pass span it wraps) sits inside the client span.
  EXPECT_LE(client_start, server_start);
  EXPECT_LE(server_end, client_end);
}

TEST_F(Observability, TraceMergeManyStitchesShardWorkerTraces) {
  // Coordinator trace: two traced dispatches (span ids 7 and 8), one
  // answered by each worker — the --shards fan-out shape.
  telem::TraceSnapshot coord_snap;
  coord_snap.epoch_ns = 0;
  telem::ThreadTrace ct;
  ct.tid = 0;
  ct.name = "coordinator";
  ct.events.push_back(
      telem::SpanEvent{"client/request", 1'000'000, 5'000'000, 1, 0, 7, 0});
  ct.events.push_back(
      telem::SpanEvent{"client/request", 6'000'000, 9'000'000, 1, 0, 8, 0});
  coord_snap.threads.push_back(std::move(ct));

  // Each worker on its own clock, recording shard/request (protocol v4)
  // parented under one coordinator span.
  const auto worker_json = [](std::uint64_t epoch_shift_ns,
                              std::uint64_t parent) {
    telem::TraceSnapshot snap;
    snap.epoch_ns = 0;
    telem::ThreadTrace wt;
    wt.tid = 1;
    wt.name = "shard";
    wt.events.push_back(telem::SpanEvent{
        "shard/request", epoch_shift_ns, epoch_shift_ns + 2'000'000, 1, 0,
        99, parent});
    snap.threads.push_back(std::move(wt));
    return telem::chrome_trace_json(snap, telem::MetricsSnapshot{});
  };

  TraceMergeStats stats;
  const std::string merged = merge_chrome_traces_many(
      telem::chrome_trace_json(coord_snap, telem::MetricsSnapshot{}),
      {worker_json(50'000'000, 7), worker_json(300'000'000, 8)}, &stats);

  EXPECT_EQ(stats.client_events, 2u);
  EXPECT_EQ(stats.server_events, 2u);
  EXPECT_EQ(stats.linked_requests, 2u);
  // Per-file clock alignment nests each worker span in its dispatch.
  EXPECT_EQ(stats.nested, 2u);

  const Json doc = Json::parse(merged);
  int worker_pids_seen = 0;
  int arrows = 0;
  for (const Json& e : doc.find("traceEvents")->as_array()) {
    const std::string ph = e.get_string("ph", "");
    if (ph == "s" || ph == "f") ++arrows;
    if (ph != "X" || e.get_string("name", "") != "shard/request") continue;
    ++worker_pids_seen;
    // Worker i lands on pid 2 + i, never on the coordinator's pid 1.
    EXPECT_GE(e.get_int("pid", 0), 2);
  }
  EXPECT_EQ(worker_pids_seen, 2);
  EXPECT_EQ(arrows, 4);
}

TEST_F(Observability, TraceMergeWithNoLinksStillMerges) {
  telem::TraceSnapshot a;
  a.epoch_ns = 0;
  telem::ThreadTrace t;
  t.tid = 0;
  t.name = "main";
  t.events.push_back(telem::SpanEvent{"flow", 0, 1'000'000, 0, 0});
  a.threads.push_back(std::move(t));
  const std::string json =
      telem::chrome_trace_json(a, telem::MetricsSnapshot{});

  TraceMergeStats stats;
  const std::string merged = merge_chrome_traces(json, json, &stats);
  EXPECT_EQ(stats.linked_requests, 0u);
  EXPECT_EQ(stats.offset_us, 0.0);
  EXPECT_NE(Json::parse(merged).find("traceEvents"), nullptr);
}

}  // namespace
}  // namespace dfm::service
