// Wire-protocol units (the little JSON codec, frame encode/decode) plus
// the framing fuzz corpus: truncated length prefixes, oversized frames,
// malformed JSON, mid-frame disconnects. Every mutant is thrown at a
// live server, which must answer with a structured error or drop the
// connection — never crash, hang, or leak a session. Mirrors the GDSII
// byte-flip harness in tests/gdsii/gdsii_fuzz_test.cpp.
#include "service/protocol.h"

#include "service/client.h"
#include "service/server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dfm::service {
namespace {

// --------------------------------------------------------------------------
// Json codec

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").as_double(), 2.5);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, DumpSortsKeysAndRoundTrips) {
  const Json v = Json::parse(
      R"({"zeta":1,"alpha":[1,2,{"b":true,"a":null}],"mid":"x\n\"y\""})");
  const std::string dumped = v.dump();
  // Deterministic: object keys come out sorted.
  EXPECT_EQ(dumped,
            "{\"alpha\":[1,2,{\"a\":null,\"b\":true}],"
            "\"mid\":\"x\\n\\\"y\\\"\",\"zeta\":1}");
  EXPECT_EQ(Json::parse(dumped).dump(), dumped);
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);       // trailing garbage
  EXPECT_THROW(Json::parse("\"\\q\""), JsonError);   // bad escape
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError); // missing colon
}

TEST(Json, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_THROW(Json::parse(deep), JsonError);
}

TEST(Json, AccessorsTypeCheck) {
  const Json v = Json::parse("{\"n\":3}");
  EXPECT_EQ(v.get_int("n", 0), 3);
  EXPECT_EQ(v.get_int("missing", -1), -1);
  EXPECT_THROW(v.as_string(), JsonError);
  EXPECT_THROW(Json::parse("\"s\"").as_int(), JsonError);
}

// --------------------------------------------------------------------------
// Framing fuzz against a live server

std::string sock_path(const std::string& tag) {
  // ctest runs each discovered test as its own process, possibly in
  // parallel: the pid keeps concurrent servers off each other's socket.
  return ::testing::TempDir() + "dfm_proto_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

ServiceOptions tiny_server_options(const std::string& tag) {
  ServiceOptions opt;
  opt.unix_path = sock_path(tag);
  opt.workers = 2;
  opt.pool_threads = 2;
  return opt;
}

/// Raw connection: consumes the hello frame, then lets the test push
/// arbitrary bytes.
class RawConn {
 public:
  explicit RawConn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ADD_FAILURE() << "connect failed";
    }
    std::string hello;
    EXPECT_TRUE(read_frame(fd_, hello, kDefaultMaxFrameBytes));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_bytes(const std::string& bytes) {
    (void)!::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  }
  void half_close() { ::shutdown(fd_, SHUT_WR); }

  /// Reads the server's reaction: a structured error reply, or a clean
  /// drop. Anything else (a hang would trip the test timeout) fails.
  void expect_error_or_drop() {
    std::string payload;
    try {
      if (!read_frame(fd_, payload, kDefaultMaxFrameBytes)) {
        return;  // dropped: acceptable
      }
    } catch (const ProtocolError&) {
      return;  // connection reset mid-reply: still a drop
    }
    const Json reply = Json::parse(payload);
    EXPECT_FALSE(reply.get_bool("ok", true))
        << "server accepted a corrupt frame: " << payload;
    EXPECT_FALSE(reply.get_string("error", "").empty());
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

std::string frame_bytes(const std::string& payload) {
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out += payload;
  return out;
}

class ProtocolFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<ServiceServer>(tiny_server_options("fuzz"));
    server_->start();
  }

  /// The liveness probe the corpus asserts after every mutant: a fresh
  /// connection still gets a hello and answers ping, and the mutant
  /// leaked no session into the registry.
  void assert_server_healthy() {
    ServiceClient probe =
        ServiceClient::connect_unix(server_->options().unix_path);
    EXPECT_TRUE(probe.ping().get_bool("ok", false));
    const Json stats = probe.stats();
    EXPECT_EQ(stats.get_int("active_sessions", -1), 0);
  }

  void run_mutant(const std::string& bytes) {
    RawConn conn(server_->options().unix_path);
    conn.send_bytes(bytes);
    conn.half_close();
    conn.expect_error_or_drop();
    assert_server_healthy();
  }

  std::unique_ptr<ServiceServer> server_;
};

TEST_F(ProtocolFuzz, TruncatedLengthPrefixes) {
  const std::string full = frame_bytes("{\"op\":\"ping\",\"id\":1}");
  for (std::size_t cut = 1; cut < kFrameHeaderBytes; ++cut) {
    run_mutant(full.substr(0, cut));
  }
}

TEST_F(ProtocolFuzz, MidFrameDisconnects) {
  const std::string full = frame_bytes("{\"op\":\"ping\",\"id\":1}");
  for (const std::size_t cut :
       {kFrameHeaderBytes, kFrameHeaderBytes + 1, full.size() - 1}) {
    run_mutant(full.substr(0, cut));
  }
}

TEST_F(ProtocolFuzz, UndersizedAndOversizedDeclaredLengths) {
  run_mutant(std::string("\x00\x00\x00\x00", 4));  // len 0 < minimum 2
  run_mutant(std::string("\x00\x00\x00\x01", 4) + "x");
  // Declares 1 GiB; the server must refuse without trying to read it.
  run_mutant(std::string("\x40\x00\x00\x00", 4));
}

TEST_F(ProtocolFuzz, MalformedJsonPayloads) {
  for (const std::string payload :
       {"{]", "{\"op\":", "ping", "\xff\xfe garbage \x00x", "[1,2,3",
        "{\"op\":\"ping\"", "{{}}"}) {
    run_mutant(frame_bytes(payload));
  }
}

TEST_F(ProtocolFuzz, ValidJsonWrongShape) {
  // Parses fine, but is not a usable request: structured error expected.
  for (const std::string payload :
       {"[1,2,3]", "42", "\"ping\"", "{\"id\":1}",
        "{\"op\":\"no_such_op\",\"id\":7}",
        "{\"op\":\"open\",\"id\":8}",                 // missing path
        "{\"op\":\"flow\",\"id\":9,\"session\":\"nope\"}"}) {
    RawConn conn(server_->options().unix_path);
    conn.send_bytes(frame_bytes(payload));
    std::string reply_payload;
    ASSERT_TRUE(read_frame(conn.fd(), reply_payload, kDefaultMaxFrameBytes));
    const Json reply = Json::parse(reply_payload);
    EXPECT_FALSE(reply.get_bool("ok", true)) << payload;
    EXPECT_FALSE(reply.get_string("error", "").empty()) << payload;
    assert_server_healthy();
  }
}

TEST_F(ProtocolFuzz, RandomByteSoup) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> len(1, 64);
  for (int trial = 0; trial < 24; ++trial) {
    std::string soup(len(rng), '\0');
    for (char& c : soup) c = static_cast<char>(byte(rng));
    // Cap the declared length so a random prefix cannot make the server
    // legitimately wait for gigabytes we will never send.
    soup[0] = 0;
    soup[1] = 0;
    run_mutant(soup);
  }
}

TEST_F(ProtocolFuzz, CorruptFrameAfterValidTraffic) {
  // A connection that was speaking the protocol correctly, then breaks
  // it: the good request is answered, the bad one errors or drops.
  RawConn conn(server_->options().unix_path);
  conn.send_bytes(frame_bytes("{\"op\":\"ping\",\"id\":1}"));
  std::string payload;
  ASSERT_TRUE(read_frame(conn.fd(), payload, kDefaultMaxFrameBytes));
  EXPECT_TRUE(Json::parse(payload).get_bool("ok", false));
  conn.send_bytes(std::string("\x00\x00\x00\x01", 4));
  conn.half_close();
  conn.expect_error_or_drop();
  assert_server_healthy();
}

}  // namespace
}  // namespace dfm::service
