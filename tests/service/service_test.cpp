// ServiceServer behavior: served reports byte-identical to the direct
// library call (at 1 and 8 server workers), admission-queue
// backpressure, session limits, deadlines, idle eviction, the version
// handshake, and an 8-client mixed storm with a mid-storm graceful
// shutdown. Runs under the tsan/asan presets like every other tier-1
// test.
#include "service/server.h"

#include "core/fix_engine.h"
#include "core/incremental.h"
#include "core/snapshot_shm.h"
#include "core/version.h"
#include "gdsii/gdsii.h"
#include "gen/generators.h"
#include "service/client.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dfm::service {
namespace {

const std::vector<std::string> kFastPasses = {"drc", "nets", "vias", "caa"};

std::string demo_gds() {
  static const std::string path = [] {
    DesignParams p;
    p.seed = 3;
    p.rows = 2;
    p.cells_per_row = 5;
    p.routes = 10;
    // pid-suffixed: concurrent test processes each write their own copy.
    const std::string out = ::testing::TempDir() + "dfm_service_demo_" +
                            std::to_string(::getpid()) + ".gds";
    write_gdsii_file(generate_design(p), out);
    return out;
  }();
  return path;
}

ServiceOptions base_options(const std::string& tag) {
  ServiceOptions opt;
  // pid-suffixed: parallel ctest runs each test as its own process.
  opt.unix_path = ::testing::TempDir() + "dfm_svc_" + tag + "_" +
                  std::to_string(::getpid()) + ".sock";
  opt.workers = 2;
  opt.pool_threads = 2;
  opt.flow.passes = kFastPasses;
  return opt;
}

Json edit_patch(bool remove) {
  return ServiceClient::make_edit("m1", 1000, 1000, 1400, 1400, remove);
}

// --------------------------------------------------------------------------

TEST(Service, HelloCarriesVersionHandshake) {
  ServiceServer server(base_options("hello"));
  server.start();
  ServiceClient client = ServiceClient::connect_unix(
      server.options().unix_path);
  const Json& hello = client.hello();
  EXPECT_EQ(hello.get_string("op", ""), "hello");
  EXPECT_EQ(hello.get_string("server", ""), "dfmkit");
  EXPECT_EQ(hello.get_int("protocol", 0), kProtocolVersion);
  EXPECT_EQ(hello.get_string("revision", ""), git_revision());
  EXPECT_EQ(hello.get_string("build", ""), build_config());
  // The "version" op reports the same stamp.
  const Json v = client.version();
  EXPECT_EQ(v.get_string("revision", ""), git_revision());
}

TEST(Service, TcpLoopbackWorks) {
  ServiceOptions opt = base_options("tcp");
  opt.unix_path.clear();
  opt.tcp_port = 0;  // ephemeral
  ServiceServer server(std::move(opt));
  server.start();
  ASSERT_GT(server.tcp_port(), 0);
  ServiceClient client = ServiceClient::connect_tcp(server.tcp_port());
  EXPECT_TRUE(client.ping().get_bool("ok", false));
}

/// The tentpole equivalence gate: a served open + edits must return the
/// exact bytes the direct library path produces, with 1 and with 8
/// server workers.
class ServedEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(ServedEquivalence, ReportsBitIdenticalToDirectSession) {
  // Direct library run.
  const Library lib = read_gdsii_file(demo_gds());
  DfmFlowOptions direct_opt;
  direct_opt.passes = kFastPasses;
  direct_opt.threads = 2;
  DfmFlowSession direct(lib, lib.top_cells().front(), direct_opt);
  const std::string direct_cold = flow_report_canonical_json(direct.report());

  LayoutDelta add;
  add.add(layers::kMetal1, Rect{1000, 1000, 1400, 1400});
  const std::string direct_after_add =
      flow_report_canonical_json(direct.apply(add));
  LayoutDelta remove;
  remove.remove(layers::kMetal1, Rect{1000, 1000, 1400, 1400});
  const std::string direct_after_remove =
      flow_report_canonical_json(direct.apply(remove));

  // Served run, same schedule.
  ServiceOptions opt = base_options("equiv" + std::to_string(GetParam()));
  opt.workers = GetParam();
  ServiceServer server(std::move(opt));
  server.start();
  ServiceClient client =
      ServiceClient::connect_unix(server.options().unix_path);
  const Json opened = client.open(demo_gds());
  const std::string session = opened.get_string("session", "");
  ASSERT_FALSE(session.empty());
  EXPECT_EQ(opened.get_string("report", ""), direct_cold);

  const Json after_add = client.edit(session, {edit_patch(false)});
  EXPECT_EQ(after_add.get_string("report", ""), direct_after_add);
  const Json after_remove = client.edit(session, {edit_patch(true)});
  EXPECT_EQ(after_remove.get_string("report", ""), direct_after_remove);

  // "flow" re-serves the current report without recomputing.
  EXPECT_EQ(client.flow(session).get_string("report", ""),
            direct_after_remove);
  client.close_session(session);
}

INSTANTIATE_TEST_SUITE_P(Workers, ServedEquivalence,
                         ::testing::Values(1u, 8u));

/// The fix-loop equivalence gate: the served "fix" op must return the
/// exact outcome and report bytes the direct FixEngine loop produces,
/// over several seeded layouts.
TEST(Service, FixOpMatchesDirectLoopByteForByte) {
  ServiceOptions sopt = base_options("fix");
  sopt.flow.fix.max_iters = 1;  // server-side default, used by the op
  ServiceServer server(std::move(sopt));
  server.start();
  ServiceClient client =
      ServiceClient::connect_unix(server.options().unix_path);

  for (const std::uint64_t seed : {3ull, 5ull, 9ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    DesignParams p;
    p.seed = seed;
    p.rows = 2;
    p.cells_per_row = 3;
    p.routes = 6;
    p.via_fields = 1;
    p.vias_per_field = 12;
    const Library lib = generate_design(p);
    const std::string path = ::testing::TempDir() + "dfm_fix_" +
                             std::to_string(seed) + "_" +
                             std::to_string(::getpid()) + ".gds";
    write_gdsii_file(lib, path);

    // Direct loop, same schedule the server runs.
    DfmFlowOptions direct_opt;
    direct_opt.passes = kFastPasses;
    direct_opt.threads = 2;
    DfmFlowSession direct(lib, lib.top_cells().front(), direct_opt);
    FixOptions fo;
    fo.max_iters = 1;
    const FixOutcome direct_out = FixEngine::fix(direct, fo);
    const std::string direct_outcome = fix_outcome_json(direct_out);
    const std::string direct_report =
        flow_report_canonical_json(direct.report());

    const Json opened = client.open(path);
    const std::string session = opened.get_string("session", "");
    ASSERT_FALSE(session.empty());
    const Json fixed = client.fix(session);
    EXPECT_EQ(fixed.get_string("outcome", ""), direct_outcome);
    EXPECT_EQ(fixed.get_string("report", ""), direct_report);
    client.close_session(session);
  }

  // Request validation: unknown moves and bad iteration counts are
  // structured errors, not crashes.
  const Json opened = client.open(demo_gds());
  const std::string session = opened.get_string("session", "");
  try {
    client.fix(session, 1, 0, {"warp_drive"});
    FAIL() << "unknown move must be rejected";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), errc::kBadRequest);
  }
  try {
    Json::Object req;
    req["op"] = Json("fix");
    req["session"] = Json(session);
    req["max_iters"] = Json(-7);
    client.call_ok(Json(std::move(req)));
    FAIL() << "negative max_iters must be rejected";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), errc::kBadRequest);
  }
  client.close_session(session);
}

/// v2 clients refuse to talk to servers that greet with a different
/// protocol revision — before any request crosses the wire.
TEST(Service, ClientRejectsProtocolMismatch) {
  const std::string path = ::testing::TempDir() + "dfm_svc_mismatch_" +
                           std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);

  // A fake old server: greets with protocol 1, then waits for a frame
  // that must never arrive.
  std::thread fake([&] {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) return;
    Json::Object hello;
    hello["op"] = Json("hello");
    hello["ok"] = Json(true);
    hello["server"] = Json("dfmkit");
    hello["protocol"] = Json(1);
    write_frame(conn, Json(std::move(hello)).dump());
    std::string payload;
    EXPECT_FALSE(read_frame(conn, payload, kDefaultMaxFrameBytes))
        << "client sent a request to a mismatched server";
    ::close(conn);
  });

  try {
    ServiceClient client = ServiceClient::connect_unix(path);
    FAIL() << "mismatched hello must be refused";
  } catch (const ProtocolError& e) {
    EXPECT_STREQ(e.code(), errc::kProtocolMismatch);
  }
  fake.join();
  ::close(listener);
  ::unlink(path.c_str());
}

TEST(Service, SnapshotShmSessionsMatchDirectAndShareOneSegment) {
  const Library lib = read_gdsii_file(demo_gds());
  DfmFlowOptions direct_opt;
  direct_opt.passes = kFastPasses;
  direct_opt.threads = 2;
  DfmFlowSession direct(lib, lib.top_cells().front(), direct_opt);
  const std::string direct_cold = flow_report_canonical_json(direct.report());

  ServiceOptions opt = base_options("shm");
  // pid-suffixed prefix: parallel test processes must not share segments.
  opt.snapshot_shm = "dfmkit-test-" + std::to_string(::getpid());
  opt.flow.memory_budget = 64 << 10;  // evict aggressively, same bytes out
  const std::string segment =
      snapshot_shm_name_for(opt.snapshot_shm, demo_gds());
  ServiceServer server(std::move(opt));
  server.start();
  ServiceClient client =
      ServiceClient::connect_unix(server.options().unix_path);

  // First open publishes the segment; the second one attaches it. Both
  // serve the exact bytes of the direct in-memory session.
  const Json first = client.open(demo_gds());
  EXPECT_EQ(first.get_string("report", ""), direct_cold);
  EXPECT_TRUE(snapshot_shm_exists(segment));
  const Json second = client.open(demo_gds());
  EXPECT_EQ(second.get_string("report", ""), direct_cold);

  client.close_session(first.get_string("session", ""));
  client.close_session(second.get_string("session", ""));
  server.request_shutdown();
  server.wait();
  // The publishing server unlinks its segments on shutdown.
  EXPECT_FALSE(snapshot_shm_exists(segment));
}

TEST(Service, BackpressureRepliesWhenQueueFull) {
  ServiceOptions opt = base_options("backpressure");
  opt.workers = 1;
  opt.max_queue = 1;
  opt.enable_debug_ops = true;
  ServiceServer server(std::move(opt));
  server.start();

  // One sleeper occupies the single worker, one more fills the queue;
  // everything past that must get an immediate queue_full error.
  ServiceClient blocker =
      ServiceClient::connect_unix(server.options().unix_path);
  std::thread sleeper([&] {
    blocker.call(Json::parse("{\"op\":\"sleep\",\"ms\":400,\"id\":1}"));
  });
  // Wait until the sleeper is actually running (queue drained to 0).
  ServiceClient prober =
      ServiceClient::connect_unix(server.options().unix_path);
  for (int i = 0; i < 200; ++i) {
    const Json s = prober.stats();
    if (s.get_int("requests_admitted", 0) >= 1 &&
        s.get_int("queue_depth", 1) == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Six concurrent floods: the single worker is busy, the queue holds
  // one, so at least four must bounce with queue_full immediately.
  std::atomic<unsigned> queue_full{0};
  std::vector<std::thread> flood;
  for (int i = 0; i < 6; ++i) {
    flood.emplace_back([&] {
      ServiceClient c =
          ServiceClient::connect_unix(server.options().unix_path);
      const Json reply =
          c.call(Json::parse("{\"op\":\"sleep\",\"ms\":400}"));
      if (!reply.get_bool("ok", true) &&
          reply.get_string("error", "") == errc::kQueueFull) {
        queue_full.fetch_add(1);
      }
    });
  }
  for (std::thread& t : flood) t.join();
  EXPECT_GE(queue_full.load(), 4u) << "full queue must reject, not block";
  sleeper.join();
  EXPECT_GE(prober.stats().get_int("rejected_backpressure", 0), 4);
}

TEST(Service, SessionLimitYieldsStructuredError) {
  ServiceOptions opt = base_options("maxsessions");
  opt.max_sessions = 1;
  ServiceServer server(std::move(opt));
  server.start();
  ServiceClient client =
      ServiceClient::connect_unix(server.options().unix_path);
  const std::string first =
      client.open(demo_gds()).get_string("session", "");
  try {
    client.open(demo_gds());
    FAIL() << "second open should hit the session limit";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), errc::kTooManySessions);
  }
  // Closing frees the slot.
  client.close_session(first);
  EXPECT_FALSE(client.open(demo_gds()).get_string("session", "").empty());
}

TEST(Service, QueuedPastDeadlineIsRefused) {
  ServiceOptions opt = base_options("deadline");
  opt.workers = 1;
  opt.enable_debug_ops = true;
  ServiceServer server(std::move(opt));
  server.start();
  ServiceClient blocker =
      ServiceClient::connect_unix(server.options().unix_path);
  std::thread sleeper([&] {
    blocker.call(Json::parse("{\"op\":\"sleep\",\"ms\":300,\"id\":1}"));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ServiceClient client =
      ServiceClient::connect_unix(server.options().unix_path);
  // Will sit behind the 300ms sleeper but only has a 10ms budget.
  const Json reply = client.call(
      Json::parse("{\"op\":\"sleep\",\"ms\":1,\"deadline_ms\":10}"));
  EXPECT_FALSE(reply.get_bool("ok", true));
  EXPECT_EQ(reply.get_string("error", ""), errc::kDeadlineExceeded);
  sleeper.join();
}

TEST(Service, IdleSessionsAreEvicted) {
  ServiceOptions opt = base_options("evict");
  opt.idle_timeout_ms = 50;  // housekeeping tick is 200ms
  ServiceServer server(std::move(opt));
  server.start();
  ServiceClient client =
      ServiceClient::connect_unix(server.options().unix_path);
  const std::string session =
      client.open(demo_gds()).get_string("session", "");
  ASSERT_FALSE(session.empty());
  Json stats = client.stats();
  EXPECT_EQ(stats.get_int("active_sessions", -1), 1);
  for (int i = 0; i < 100 && stats.get_int("active_sessions", -1) != 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stats = client.stats();
  }
  EXPECT_EQ(stats.get_int("active_sessions", -1), 0);
  EXPECT_EQ(stats.get_int("sessions_evicted", -1), 1);
  try {
    client.flow(session);
    FAIL() << "evicted session should be unknown";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), errc::kUnknownSession);
  }
}

TEST(Service, ShutdownOpDrainsAndRefusesNewWork) {
  ServiceServer server(base_options("shutdownop"));
  server.start();
  const std::string path = server.options().unix_path;
  {
    ServiceClient client = ServiceClient::connect_unix(path);
    client.shutdown_server();
  }
  server.wait();  // returns because the op triggered the drain
  EXPECT_TRUE(server.draining());
  EXPECT_THROW(ServiceClient::connect_unix(path), ProtocolError);
}

TEST(Service, EightClientStormWithMidStormShutdown) {
  ServiceOptions opt = base_options("storm");
  opt.workers = 4;
  opt.pool_threads = 4;
  opt.max_sessions = 12;
  opt.max_queue = 8;
  ServiceServer server(std::move(opt));
  server.start();
  const std::string path = server.options().unix_path;

  // A session every client hammers concurrently, besides its own.
  ServiceClient setup = ServiceClient::connect_unix(path);
  const std::string shared =
      setup.open(demo_gds()).get_string("session", "");
  ASSERT_FALSE(shared.empty());

  std::atomic<std::uint64_t> ok_replies{0};
  std::atomic<std::uint64_t> rejections{0};
  std::atomic<bool> invariant_broken{false};
  std::vector<std::thread> clients;
  clients.reserve(8);
  for (unsigned c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      try {
        ServiceClient client = ServiceClient::connect_unix(path);
        std::string own;
        for (int i = 0; i < 40; ++i) {
          Json reply;
          switch ((i + static_cast<int>(c)) % 4) {
            case 0:
              if (own.empty()) {
                reply = client.call(Json::parse(
                    "{\"op\":\"open\",\"path\":\"" + demo_gds() + "\"}"));
                if (reply.get_bool("ok", false)) {
                  own = reply.get_string("session", "");
                }
                break;
              }
              [[fallthrough]];
            case 1:
              reply = client.call(Json(Json::Object{
                  {"op", Json("edit")},
                  {"session", Json(own.empty() ? shared : own)},
                  {"edits", Json(Json::Array{edit_patch(i % 2 == 1)})}}));
              break;
            case 2:
              reply = client.call(Json(Json::Object{
                  {"op", Json("flow")}, {"session", Json(shared)}}));
              break;
            default:
              reply = client.stats();
              break;
          }
          if (reply.get_bool("ok", false)) {
            ok_replies.fetch_add(1);
          } else {
            const std::string code = reply.get_string("error", "");
            // Under storm + shutdown these are the only legal failures.
            if (code != errc::kShuttingDown && code != errc::kQueueFull &&
                code != errc::kTooManySessions &&
                code != errc::kUnknownSession) {
              invariant_broken.store(true);
            }
            rejections.fetch_add(1);
          }
        }
      } catch (const ProtocolError&) {
        // Connection cut by shutdown: expected for late clients.
      } catch (const JsonError&) {
        invariant_broken.store(true);
      }
    });
  }

  // Let the storm develop, then pull the plug while requests are in
  // flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server.request_shutdown();
  for (std::thread& t : clients) t.join();
  server.wait();

  EXPECT_FALSE(invariant_broken.load());
  EXPECT_GT(ok_replies.load(), 0u);
  const ServiceStats stats = server.stats();
  // Graceful: everything admitted was answered, nothing abandoned.
  EXPECT_EQ(stats.requests_admitted, stats.requests_completed);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(Service, StatsOpMatchesServerStats) {
  ServiceServer server(base_options("stats"));
  server.start();
  ServiceClient client =
      ServiceClient::connect_unix(server.options().unix_path);
  client.ping();
  const Json s = client.stats();
  EXPECT_EQ(s.get_int("active_sessions", -1), 0);
  EXPECT_FALSE(s.get_bool("draining", true));
  EXPECT_EQ(static_cast<std::uint64_t>(s.get_int("requests_admitted", -1)),
            server.stats().requests_admitted);
}

}  // namespace
}  // namespace dfm::service
