// Distributed sharding: partition geometry, wire round-trips, routing
// rules, and the subsystem's headline guarantee — a flow run against a
// ShardBackend is byte-identical (flow_report_canonical_json) to the
// unsharded run at every shard count, cold and after any edit sequence.
// The boundary tests pin the cases sharding gets wrong when the halo or
// dedup rules are off by one: violations exactly on a shard border,
// hotspot clusters spanning shards, capture windows reaching across a
// border, and edits straddling two shards.
#include "shard/local_backend.h"

#include "core/incremental.h"
#include "core/stream_source.h"
#include "gdsii/gdsii.h"
#include "gen/generators.h"
#include "shard/remote_backend.h"
#include "shard/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dfm {
namespace {

using shard::LocalShardBackend;
using shard::ShardPlan;

LayerMap flow_layers(const Library& lib, std::uint32_t top) {
  LayerMap m;
  for (const LayerKey k : LayoutSnapshot::standard_flow_layers()) {
    m.emplace(k, lib.flatten(top, k));
  }
  return m;
}

LayerMap small_design(std::uint64_t seed) {
  DesignParams p;
  p.seed = seed;
  p.rows = 2;
  p.cells_per_row = 4;
  p.routes = 8;
  p.via_fields = 1;
  p.vias_per_field = 16;
  const Library lib = generate_design(p);
  return flow_layers(lib, lib.top_cells()[0]);
}

DfmFlowOptions fast_options(unsigned threads, bool litho = false) {
  DfmFlowOptions o;
  o.threads = threads;
  o.tech = Tech::standard();
  o.model.sigma = 20;
  o.model.px = 10;  // coarse raster: litho correctness, not resolution
  o.litho_tile = 6000;
  o.run_litho = litho;
  return o;
}

/// The worker-side mirror of `o` — exactly the fields shard_open ships.
shard::ShardWorkerConfig worker_config(const DfmFlowOptions& o) {
  shard::ShardWorkerConfig c;
  c.tech = o.tech;
  c.model = o.model;
  c.litho_tile = o.litho_tile;
  c.litho_edge_tolerance = o.litho_edge_tolerance;
  c.litho_fast = o.litho_fast;
  c.threads = 1;
  return c;
}

std::string cold_canonical(const LayerMap& m, const DfmFlowOptions& opt) {
  DfmFlowSession s(LayerMap(m), opt);
  return flow_report_canonical_json(s.report());
}

/// Canonical report of a cold sharded run; EXPECTs the backend stayed
/// healthy (no silent degrade — a degraded run is still byte-identical,
/// but then the test would not be exercising the shard path at all).
std::string sharded_canonical(const LayerMap& m, DfmFlowOptions opt,
                              int shards) {
  LocalShardBackend backend(m, shards, worker_config(opt));
  opt.shards = &backend;
  DfmFlowSession s(LayerMap(m), opt);
  EXPECT_FALSE(backend.degraded());
  return flow_report_canonical_json(s.report());
}

/// A random edit strictly inside `core` (stable joint bbox).
LayoutDelta random_edit(Rng& rng, const Rect& core) {
  static const std::vector<LayerKey> kEditable = {
      layers::kMetal1, layers::kMetal2, layers::kVia1};
  const LayerKey layer = rng.pick(kEditable);
  const Coord w = rng.uniform(40, 400);
  const Coord h = rng.uniform(40, 400);
  const Coord x = rng.uniform(core.lo.x, core.hi.x - w);
  const Coord y = rng.uniform(core.lo.y, core.hi.y - h);
  LayoutDelta d;
  if (rng.chance(0.3)) {
    d.remove(layer, Rect{x, y, x + w, y + h});
  } else {
    d.add(layer, Rect{x, y, x + w, y + h});
  }
  return d;
}

Rect interior(const Rect& bb, Coord d = 1500) {
  const Coord dx = std::min(d, (bb.hi.x - bb.lo.x) / 4);
  const Coord dy = std::min(d, (bb.hi.y - bb.lo.y) / 4);
  return Rect{bb.lo.x + dx, bb.lo.y + dy, bb.hi.x - dx, bb.hi.y - dy};
}

// ---------------------------------------------------------------------------
// Partition geometry.

TEST(ShardPlan, CoresTileExtentDisjointly) {
  const Rect bb{0, 0, 10000, 6000};
  const ShardPlan plan = ShardPlan::make(bb, 6, 500);
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_EQ(plan.nx * plan.ny, 6);
  EXPECT_EQ(plan.extent, bb);
  Area total = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_TRUE(bb.contains(plan.cores[i]));
    EXPECT_EQ(plan.windows[i], plan.cores[i].expanded(500));
    total += plan.cores[i].area();
    for (std::size_t j = i + 1; j < plan.size(); ++j) {
      EXPECT_FALSE(plan.cores[i].overlaps(plan.cores[j]))
          << "cores " << i << " and " << j << " overlap";
    }
  }
  EXPECT_EQ(total, bb.area()) << "cores must cover the extent exactly";
}

TEST(ShardPlan, WideExtentGetsMoreColumns) {
  const ShardPlan plan = ShardPlan::make(Rect{0, 0, 40000, 10000}, 4, 100);
  EXPECT_GT(plan.nx, plan.ny);
}

TEST(ShardPlan, OwnerIsUniqueOnInternalBorders) {
  const ShardPlan plan = ShardPlan::make(Rect{0, 0, 8000, 8000}, 4, 100);
  // Every point — including points exactly on an internal core border —
  // has exactly one owner whose core half-open-contains it.
  const std::vector<Point> probes = {
      {0, 0},           {7999, 7999},      {4000, 4000},
      {4000, 100},      {100, 4000},       {3999, 3999},
      {4000, 7999},     {7999, 4000},
  };
  for (const Point& p : probes) {
    const int o = plan.owner(p);
    ASSERT_GE(o, 0) << to_string(p);
    int holders = 0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const Rect& c = plan.cores[i];
      const bool in = p.x >= c.lo.x && p.x < c.hi.x &&  // half-open
                      p.y >= c.lo.y && p.y < c.hi.y;
      if (in) {
        ++holders;
        EXPECT_EQ(o, static_cast<int>(i)) << to_string(p);
      }
    }
    EXPECT_EQ(holders, 1) << to_string(p);
  }
  EXPECT_EQ(plan.owner(Point{-1, 0}), -1);
  EXPECT_EQ(plan.owner(Point{8000, 8000}), -1) << "hi edge is exclusive";
}

TEST(ShardPlan, SingleShardOwnsEverything) {
  const Rect bb{-500, -500, 2500, 1500};
  const ShardPlan plan = ShardPlan::make(bb, 1, 300);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.cores[0], bb);
  EXPECT_EQ(plan.owner(Point{0, 0}), 0);
}

TEST(ShardPlan, WindowsOverlappingFindsEditRecipients) {
  const ShardPlan plan = ShardPlan::make(Rect{0, 0, 8000, 4000}, 2, 500);
  ASSERT_EQ(plan.size(), 2u);
  const Coord bx = plan.cores[0].hi.x;
  // Deep inside shard 0, beyond shard 1's window reach.
  EXPECT_EQ(plan.windows_overlapping(Rect{100, 100, 200, 200}),
            (std::vector<std::size_t>{0}));
  // Straddling the border: both windows see it.
  EXPECT_EQ(plan.windows_overlapping(Rect{bx - 10, 100, bx + 10, 200}),
            (std::vector<std::size_t>{0, 1}));
  // Inside shard 1's core but within shard 0's halo: still both.
  EXPECT_EQ(plan.windows_overlapping(Rect{bx + 100, 100, bx + 200, 200}),
            (std::vector<std::size_t>{0, 1}));
}

TEST(ShardPlan, HaloCoversLithoAndDrcInfluence) {
  const Tech& t = Tech::standard();
  const Coord sigma = 25;
  const Coord halo = shard::shard_halo(t, 20000, sigma);
  // Litho: tile center to tile edge plus the 6-sigma optical apron.
  EXPECT_GT(halo, 20000 / 2 + 6 * sigma);
  // DRC + patterns: far smaller than the litho term at this tile size.
  EXPECT_GT(halo, t.wide_width);
  EXPECT_GT(halo, 8 * t.m1_width);
}

// ---------------------------------------------------------------------------
// Wire encoding: exact round-trips (the remote path adds serialization
// and nothing else, so exactness here is what carries local invariance
// over to the multi-process deployment).

TEST(ShardWire, GeometryRoundTripsExactly) {
  Region r;
  r.add(Rect{-5, -7, 100, 200});
  r.add(Rect{300, 0, 450, 90});
  EXPECT_EQ(shard::region_from_json(shard::region_to_json(r)), r);
  const Rect rect{-12345678, 4, 9999999, 1000000007};
  EXPECT_EQ(shard::rect_from_json(shard::rect_to_json(rect)), rect);
}

TEST(ShardWire, HotspotSeverityRoundTripsBitExactly) {
  Hotspot h;
  h.kind = HotspotKind::kBridge;
  h.marker = Rect{10, 20, 30, 40};
  h.severity = 0.12345678901234567;  // needs all 17 significant digits
  EXPECT_EQ(shard::hotspot_from_json(shard::hotspot_to_json(h)), h);
  h.kind = HotspotKind::kPinch;
  h.severity = 6400.0;
  EXPECT_EQ(shard::hotspot_from_json(shard::hotspot_to_json(h)), h);
}

TEST(ShardWire, SiteAndMatchRoundTrip) {
  const AnchorWindow site{Point{150, -60}, Rect{-250, -460, 550, 340}};
  EXPECT_EQ(shard::site_from_json(shard::site_to_json(site)), site);
  PatternMatch m;
  m.rule_index = 3;
  m.window = Rect{0, 0, 400, 400};
  m.anchor = Point{200, 200};
  m.exact = false;
  EXPECT_EQ(shard::match_from_json(shard::match_to_json(m)), m);
}

TEST(ShardWire, TechModelRuleDeltaRoundTrip) {
  Tech t = Tech::standard();
  t.m1_width = 37;
  t.density_max = 0.625;
  const Tech t2 = shard::tech_from_json(shard::tech_to_json(t));
  EXPECT_EQ(t2.m1_width, 37);
  EXPECT_EQ(t2.density_max, 0.625);
  EXPECT_EQ(t2.via_enclosure_end, t.via_enclosure_end);

  OpticalModel m;
  m.sigma = 20;
  m.px = 10;
  const OpticalModel m2 = shard::model_from_json(shard::model_to_json(m));
  EXPECT_EQ(m2.sigma, m.sigma);
  EXPECT_EQ(m2.px, m.px);

  LayoutDelta d;
  d.add(layers::kMetal1, Rect{0, 0, 100, 100});
  d.remove(layers::kVia1, Rect{50, 50, 80, 80});
  const LayoutDelta d2 = shard::delta_from_json(shard::delta_to_json(d));
  LayerMap a, b;
  a.emplace(layers::kMetal1, Region{Rect{-50, -50, 60, 60}});
  b.emplace(layers::kMetal1, Region{Rect{-50, -50, 60, 60}});
  d.apply(a);
  d2.apply(b);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Routing rules.

TEST(ShardRouting, LithoTileGoesToCenterOwner) {
  // Generous halo: every tile's 6-sigma window fits its owner's window.
  const Coord sigma = 25;
  const ShardPlan plan = ShardPlan::make(Rect{0, 0, 8000, 4000}, 2,
                                         2000 + 6 * sigma + 64);
  ASSERT_EQ(plan.size(), 2u);
  const Coord bx = plan.cores[0].hi.x;
  // Tile centered left of the border: shard 0; right of it: shard 1.
  EXPECT_EQ(shard::route_litho_tile(plan, Rect{bx - 2100, 0, bx - 100, 2000},
                                    sigma),
            0);
  EXPECT_EQ(shard::route_litho_tile(plan, Rect{bx - 100, 0, bx + 2100, 2000},
                                    sigma),
            1);
  // Center exactly on the border: half-open ownership sends it right.
  EXPECT_EQ(shard::route_litho_tile(plan, Rect{bx - 1000, 0, bx + 1000, 2000},
                                    sigma),
            1);
}

TEST(ShardRouting, UncoverableTileIsDeclined) {
  // Halo far too small for the simulation window: near the border no
  // shard's window covers tile.expanded(6*sigma), so the tile is
  // declined (computed by the coordinator) rather than mis-assigned.
  const ShardPlan plan = ShardPlan::make(Rect{0, 0, 8000, 4000}, 2, 10);
  const Coord bx = plan.cores[0].hi.x;
  EXPECT_EQ(shard::route_litho_tile(plan, Rect{bx - 1000, 1000, bx - 100, 2000},
                                    25),
            -1);
  // Deep in the interior the core itself covers the window: still owned.
  EXPECT_EQ(shard::route_litho_tile(plan, Rect{1000, 1000, 2000, 2000}, 25),
            0);
}

TEST(ShardRouting, PatternSiteGoesToAnchorOwner) {
  const ShardPlan plan = ShardPlan::make(Rect{0, 0, 8000, 4000}, 2, 600);
  const Coord bx = plan.cores[0].hi.x;
  // Anchor left of the border, capture window reaching across it: the
  // site belongs to shard 0 and its window fits shard 0's halo.
  const AnchorWindow cross{Point{bx - 100, 2000},
                           Rect{bx - 500, 1600, bx + 300, 2400}};
  EXPECT_EQ(shard::route_pattern_site(plan, cross), 0);
  // Anchor exactly on the border: owned by the right shard.
  const AnchorWindow on{Point{bx, 2000}, Rect{bx - 400, 1600, bx + 400, 2400}};
  EXPECT_EQ(shard::route_pattern_site(plan, on), 1);
  // Window wider than the halo: declined.
  const AnchorWindow wide{Point{bx - 100, 2000},
                          Rect{bx - 100 - 800, 1200, bx - 100 + 800, 2800}};
  EXPECT_EQ(shard::route_pattern_site(plan, wide), -1);
}

// ---------------------------------------------------------------------------
// Shard-count invariance: the headline guarantee.

TEST(LocalShard, ColdRunIsShardCountInvariant) {
  const LayerMap m = small_design(11);
  const DfmFlowOptions opt = fast_options(2, /*litho=*/true);
  const std::string want = cold_canonical(m, opt);
  for (const int shards : {1, 2, 8}) {
    EXPECT_EQ(sharded_canonical(m, opt, shards), want)
        << "report diverged at " << shards << " shards";
  }
}

TEST(LocalShard, IncrementalMatchesUnshardedAfterEveryEdit) {
  // Two sessions over the same layout and edit sequence — one driving a
  // 3-shard backend, one all-local — must stay byte-identical, and both
  // must keep matching a cold run's analysis results (the incremental
  // accounting in the trace legitimately differs from a cold run, so
  // that half of the check uses reports_equivalent).
  const LayerMap m = small_design(23);
  const DfmFlowOptions opt = fast_options(2, /*litho=*/true);

  LocalShardBackend backend(m, 3, worker_config(opt));
  DfmFlowOptions with_shards = opt;
  with_shards.shards = &backend;
  DfmFlowSession sharded(LayerMap(m), with_shards);
  DfmFlowSession unsharded(LayerMap(m), opt);
  LayerMap shadow = m;
  EXPECT_EQ(flow_report_canonical_json(sharded.report()),
            flow_report_canonical_json(unsharded.report()));

  Rng rng(77);
  const Rect core = interior(sharded.snapshot().bbox());
  for (int i = 0; i < 3; ++i) {
    const LayoutDelta d = random_edit(rng, core);
    sharded.apply(d);
    unsharded.apply(d);
    d.apply(shadow);
    EXPECT_FALSE(backend.degraded());
    EXPECT_EQ(flow_report_canonical_json(sharded.report()),
              flow_report_canonical_json(unsharded.report()))
        << "diverged after edit " << i;
    DfmFlowSession cold(LayerMap(shadow), opt);
    EXPECT_TRUE(reports_equivalent(sharded.report(), cold.report()))
        << "analysis drifted from cold truth after edit " << i;
  }
}

// ---------------------------------------------------------------------------
// Boundary cases: the configurations halo/dedup bugs would break.

/// Fat rails pinning a wide bbox so ShardPlan splits along x and edits
/// never move the extent. The rails are DRC-clean (well over min width).
LayerMap railed_canvas(Coord w, Coord h) {
  LayerMap m;
  Region m1;
  m1.add(Rect{0, 0, w, 300});
  m1.add(Rect{0, h - 300, w, h});
  m.emplace(layers::kMetal1, std::move(m1));
  return m;
}

TEST(LocalShard, ViolationExactlyOnShardBorder) {
  const DfmFlowOptions opt = fast_options(1);
  LayerMap base = railed_canvas(40000, 10000);

  // Learn where the internal border lands, then drop a sub-min-width
  // sliver (30 < m1_width 50) centered on it: its morphology influence
  // region is split across both workers.
  LocalShardBackend probe(base, 2, worker_config(opt));
  ASSERT_EQ(probe.plan().nx, 2);
  const Coord bx = probe.plan().cores[0].hi.x;
  ASSERT_GT(bx, probe.plan().extent.lo.x);
  ASSERT_LT(bx, probe.plan().extent.hi.x);

  base.at(layers::kMetal1).add(Rect{bx - 400, 5000, bx + 400, 5030});
  const std::string want = cold_canonical(base, opt);

  // The unsharded run must actually flag it — otherwise this proves
  // nothing about stitching.
  DfmFlowSession baseline(LayerMap(base), opt);
  EXPECT_FALSE(baseline.report().drcplus.drc.violations.empty());

  EXPECT_EQ(sharded_canonical(base, opt, 2), want);
  EXPECT_EQ(sharded_canonical(base, opt, 8), want);
}

TEST(LocalShard, HotspotClusterSpansThreeShards) {
  DfmFlowOptions opt = fast_options(1, /*litho=*/true);
  LayerMap m = railed_canvas(30000, 8000);

  LocalShardBackend probe(m, 3, worker_config(opt));
  ASSERT_EQ(probe.plan().nx, 3);
  const Coord b0 = probe.plan().cores[0].hi.x;
  const Coord b1 = probe.plan().cores[1].hi.x;

  // One continuous sub-resolution line running through all three
  // shards: a pinch cluster no single worker sees whole. 26nm is the
  // sweet spot — wide enough to survive the edge-tolerance erosion
  // (> 2 * litho_edge_tolerance), narrow enough to vanish at sigma 20.
  m.at(layers::kMetal1).add(Rect{b0 - 3000, 4000, b1 + 3000, 4026});
  const std::string want = cold_canonical(m, opt);

  DfmFlowSession baseline(LayerMap(m), opt);
  EXPECT_FALSE(baseline.report().hotspots.empty())
      << "the skinny line must pinch, or the test is vacuous";

  EXPECT_EQ(sharded_canonical(m, opt, 3), want);
  EXPECT_EQ(sharded_canonical(m, opt, 8), want);
}

TEST(LocalShard, PatternWindowReachesAcrossBorder) {
  const DfmFlowOptions opt = fast_options(1);
  LayerMap m = railed_canvas(40000, 10000);

  LocalShardBackend probe(m, 2, worker_config(opt));
  const Coord bx = probe.plan().cores[0].hi.x;

  // A via with end-of-line landing pads right next to the border: the
  // anchor sits in shard 0 but the capture window crosses into shard
  // 1's core (still inside shard 0's halo).
  const Tech& t = opt.tech;
  const Coord vx = bx - t.via_size;  // via hugs the border from the left
  const Rect via{vx, 5000, vx + t.via_size, 5000 + t.via_size};
  m[layers::kVia1].add(via);
  m.at(layers::kMetal1)
      .add(via.expanded(t.via_enclosure)
               .hull(Rect{via.lo.x - t.via_enclosure_end, via.lo.y,
                          via.hi.x + t.via_enclosure_end, via.hi.y}));
  m[layers::kMetal2].add(via.expanded(t.via_enclosure));

  const std::string want = cold_canonical(m, opt);
  EXPECT_EQ(sharded_canonical(m, opt, 2), want);
  EXPECT_EQ(sharded_canonical(m, opt, 4), want);
}

TEST(LocalShard, EditStraddlingTwoShards) {
  const DfmFlowOptions opt = fast_options(2);
  const LayerMap m = railed_canvas(40000, 10000);

  LocalShardBackend backend(m, 2, worker_config(opt));
  const Coord bx = backend.plan().cores[0].hi.x;
  DfmFlowOptions with_shards = opt;
  with_shards.shards = &backend;
  DfmFlowSession sharded(LayerMap(m), with_shards);
  DfmFlowSession unsharded(LayerMap(m), opt);

  // Add a bar crossing the border, then carve a sub-min-width waist
  // into it right on the border — both deltas overlap both workers'
  // windows and must reach both, and the second leaves a violation
  // whose influence region is split across the shards.
  LayoutDelta add;
  add.add(layers::kMetal1, Rect{bx - 2000, 4000, bx + 2000, 4100});
  sharded.apply(add);
  unsharded.apply(add);
  EXPECT_FALSE(backend.degraded());
  EXPECT_EQ(flow_report_canonical_json(sharded.report()),
            flow_report_canonical_json(unsharded.report()));

  LayoutDelta cut;
  cut.remove(layers::kMetal1, Rect{bx - 300, 4030, bx + 300, 4100});
  sharded.apply(cut);
  unsharded.apply(cut);
  EXPECT_FALSE(backend.degraded());
  EXPECT_FALSE(unsharded.report().drcplus.drc.violations.empty())
      << "the waist must violate min width, or the test is vacuous";
  EXPECT_EQ(flow_report_canonical_json(sharded.report()),
            flow_report_canonical_json(unsharded.report()));
}

TEST(LocalShard, EditEscapingExtentDegradesButStaysExact) {
  const DfmFlowOptions opt = fast_options(1);
  const LayerMap m = railed_canvas(20000, 8000);

  LocalShardBackend backend(m, 2, worker_config(opt));
  DfmFlowOptions with_shards = opt;
  with_shards.shards = &backend;
  DfmFlowSession sharded(LayerMap(m), with_shards);
  DfmFlowSession unsharded(LayerMap(m), opt);

  // Geometry outside the plan extent: workers cannot mirror it, so the
  // backend must degrade (decline everything) — and the flow must then
  // compute locally, still byte-identical to the unsharded session.
  LayoutDelta d;
  d.add(layers::kMetal1, Rect{25000, 2000, 25400, 2100});
  sharded.apply(d);
  unsharded.apply(d);
  EXPECT_TRUE(backend.degraded());
  EXPECT_EQ(flow_report_canonical_json(sharded.report()),
            flow_report_canonical_json(unsharded.report()));

  // And it stays degraded: later edits keep the exactness guarantee.
  LayoutDelta d2;
  d2.add(layers::kMetal2, Rect{1000, 1000, 1200, 1100});
  sharded.apply(d2);
  unsharded.apply(d2);
  EXPECT_TRUE(backend.degraded());
  EXPECT_EQ(flow_report_canonical_json(sharded.report()),
            flow_report_canonical_json(unsharded.report()));
}

// ---------------------------------------------------------------------------
// Remote deployment: real `dfmkit shard-serve` worker processes. The
// routing/stitching logic is shared with LocalShardBackend, so this
// proves process lifecycle + exact serialization, not new semantics.

#ifdef DFMKIT_BIN

TEST(RemoteShard, MatchesDirectRunColdAndIncremental) {
  DesignParams p;
  p.seed = 5;
  p.rows = 2;
  p.cells_per_row = 3;
  p.routes = 6;
  p.via_fields = 1;
  p.vias_per_field = 9;
  const Library lib = generate_design(p);

  const std::string dir = shard::make_shard_scratch_dir();
  const std::string gds = dir + "/design.gds";
  write_gdsii_file(lib, gds);

  DfmFlowOptions opt = fast_options(1, /*litho=*/true);
  const auto source = open_stream_source(gds);

  // Unsharded baseline over the same streaming source.
  DfmFlowSession direct(source, opt);
  const std::string want = flow_report_canonical_json(direct.report());

  shard::RemoteShardConfig sc;
  sc.worker = worker_config(opt);
  sc.layout_path = gds;
  sc.binary = DFMKIT_BIN;
  sc.socket_dir = dir;
  sc.shards = 2;
  shard::RemoteShardBackend backend(shard::shard_extent_of(gds),
                                    std::move(sc));
  ASSERT_EQ(backend.shard_count(), 2u);

  DfmFlowOptions sharded = opt;
  sharded.shards = &backend;
  DfmFlowSession session(source, sharded);
  EXPECT_FALSE(backend.degraded());
  EXPECT_EQ(flow_report_canonical_json(session.report()), want);

  // One straddling edit over the wire: both sessions apply it; the
  // sharded report must track the direct one byte for byte.
  const Coord bx = backend.plan().cores[0].hi.x;
  const Rect bb = backend.plan().extent;
  LayoutDelta d;
  d.add(layers::kMetal1, Rect{bx - 400, bb.center().y, bx + 400,
                              bb.center().y + 90});
  session.apply(d);
  direct.apply(d);
  EXPECT_FALSE(backend.degraded());
  EXPECT_EQ(flow_report_canonical_json(session.report()),
            flow_report_canonical_json(direct.report()));
}

#endif  // DFMKIT_BIN

}  // namespace
}  // namespace dfm
