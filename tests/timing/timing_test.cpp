#include "timing/timing.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

namespace dfm {
namespace {

OpticalModel optics() {
  OpticalModel m;
  m.sigma = 25;
  m.px = 5;
  return m;
}

// One vertical poly gate (length 60) over a horizontal diffusion band.
struct Fixture {
  Region poly;
  Region diff;
};

Fixture one_gate() {
  Fixture f;
  f.poly.add(Rect{500, 0, 560, 1000});      // vertical stripe, L = 60
  f.diff.add(Rect{200, 300, 900, 700});     // W = 400
  return f;
}

TEST(ExtractGates, FindsChannel) {
  const Fixture f = one_gate();
  const auto gates = extract_gates(f.poly, f.diff);
  ASSERT_EQ(gates.size(), 1u);
  EXPECT_EQ(gates[0].drawn_length, 60);
  EXPECT_EQ(gates[0].width, 400);
  EXPECT_TRUE(gates[0].vertical_poly);
  EXPECT_EQ(gates[0].bbox, (Rect{500, 300, 560, 700}));
}

TEST(ExtractGates, MultipleFingers) {
  Fixture f;
  for (int i = 0; i < 3; ++i) {
    f.poly.add(Rect{300 + i * 200, 0, 340 + i * 200, 1000});
  }
  f.diff.add(Rect{0, 300, 1200, 700});
  EXPECT_EQ(extract_gates(f.poly, f.diff).size(), 3u);
}

TEST(ExtractGates, HorizontalPolyDetected) {
  Fixture f;
  f.poly.add(Rect{0, 500, 1000, 560});   // horizontal stripe
  f.diff.add(Rect{300, 200, 700, 900});
  const auto gates = extract_gates(f.poly, f.diff);
  ASSERT_EQ(gates.size(), 1u);
  EXPECT_FALSE(gates[0].vertical_poly);
  EXPECT_EQ(gates[0].drawn_length, 60);
  EXPECT_EQ(gates[0].width, 400);
}

TEST(EffectiveLength, RectangularChannelIsExact) {
  const Fixture f = one_gate();
  const auto gates = extract_gates(f.poly, f.diff);
  const EffectiveLength e = effective_length(f.poly, gates[0], 5, 6.0);
  EXPECT_FALSE(e.open);
  EXPECT_NEAR(e.l_drive, 60.0, 1e-9);
  EXPECT_NEAR(e.l_leak, 60.0, 1e-9);
}

TEST(EffectiveLength, NeckedGateDrivesFasterAndLeaksMore) {
  const Fixture f = one_gate();
  const auto gates = extract_gates(f.poly, f.diff);
  // Hand-made "printed" poly with a necked middle: 60 -> 40 over 100nm.
  Region printed;
  printed.add(Rect{500, 0, 560, 450});
  printed.add(Rect{510, 450, 550, 550});  // neck: L = 40
  printed.add(Rect{500, 550, 560, 1000});
  const EffectiveLength e = effective_length(printed, gates[0], 5, 6.0);
  EXPECT_FALSE(e.open);
  EXPECT_LT(e.l_drive, 60.0);
  EXPECT_GT(e.l_drive, 40.0);
  // Leakage dominated by the short slices: equivalent length closer to 40.
  EXPECT_LT(e.l_leak, e.l_drive);
}

TEST(EffectiveLength, BrokenGateIsFlagged) {
  const Fixture f = one_gate();
  const auto gates = extract_gates(f.poly, f.diff);
  Region printed;
  printed.add(Rect{500, 0, 560, 400});  // poly missing over 400..600
  printed.add(Rect{500, 600, 560, 1000});
  const EffectiveLength e = effective_length(printed, gates[0], 5, 6.0);
  EXPECT_TRUE(e.open);
}

TEST(DelayModel, MonotoneInLength) {
  DelayModel m;
  m.l_nominal = 60;
  EXPECT_DOUBLE_EQ(m.stage_delay_ps(60.0), m.tau0_ps);
  EXPECT_LT(m.stage_delay_ps(55.0), m.stage_delay_ps(60.0));
  EXPECT_GT(m.stage_delay_ps(65.0), m.stage_delay_ps(60.0));
  EXPECT_DOUBLE_EQ(m.leakage_rel(60.0), 1.0);
  EXPECT_GT(m.leakage_rel(54.0), 2.0);  // one e-fold per 6nm
  EXPECT_LT(m.leakage_rel(66.0), 0.5);
}

TEST(AnalyzeTiming, DrawnEqualsNominalModel) {
  const Fixture f = one_gate();
  DelayModel m;
  m.l_nominal = 60;
  const TimingReport rep = analyze_timing_drawn(f.poly, f.diff, m);
  ASSERT_EQ(rep.gates.size(), 1u);
  EXPECT_EQ(rep.open_gates, 0);
  EXPECT_NEAR(rep.chain_delay_ps, m.tau0_ps, 1e-9);
  EXPECT_NEAR(rep.total_leakage, 1.0, 1e-9);
}

TEST(AnalyzeTiming, PrintedDiffersFromDrawnAndDoseMatters) {
  const Fixture f = one_gate();
  DelayModel m;
  m.l_nominal = 60;
  const Rect w = f.poly.bbox().expanded(300);
  const TimingReport nominal =
      analyze_timing(f.poly, f.diff, w, optics(), {1.0, 0}, m);
  ASSERT_EQ(nominal.gates.size(), 1u);
  EXPECT_EQ(nominal.open_gates, 0);

  // Dark-field Gaussian model: higher dose prints the poly line wider ->
  // longer channel -> slower, less leaky.
  const TimingReport overdose =
      analyze_timing(f.poly, f.diff, w, optics(), {1.15, 0}, m);
  const TimingReport underdose =
      analyze_timing(f.poly, f.diff, w, optics(), {0.85, 0}, m);
  EXPECT_GT(overdose.chain_delay_ps, underdose.chain_delay_ps);
  EXPECT_GT(underdose.total_leakage, overdose.total_leakage);
}

TEST(AnalyzeTiming, GeneratedCellGatesAllFunctional) {
  // The standard-cell generator's gates must survive nominal litho.
  const Cell c = make_stdcell(Tech::standard(), 1, "c");
  const Region poly = c.local_region(layers::kPoly);
  const Region diff = c.local_region(layers::kDiff);
  DelayModel m;
  m.l_nominal = Tech::standard().poly_width;
  const Rect w = c.local_bbox().expanded(200);
  OpticalModel gentle;
  gentle.sigma = 15;
  gentle.px = 5;
  const TimingReport rep = analyze_timing(poly, diff, w, gentle, {1.0, 0}, m);
  EXPECT_GT(rep.gates.size(), 2u);
  EXPECT_EQ(rep.open_gates, 0);
  EXPECT_GT(rep.chain_delay_ps, 0.0);
}

}  // namespace
}  // namespace dfm
