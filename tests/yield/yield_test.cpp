#include "yield/yield.h"

#include "core/snapshot.h"

#include "gen/generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dfm {
namespace {

TEST(DefectModel, PdfNormalizes) {
  DefectModel m;
  m.x0 = 40;
  m.xmax = 2000;
  // Trapezoid-integrate the pdf; should be ~1.
  double acc = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double s0 = 40 + (2000.0 - 40) * i / n;
    const double s1 = 40 + (2000.0 - 40) * (i + 1) / n;
    acc += 0.5 *
           (m.pdf(static_cast<Coord>(s0)) + m.pdf(static_cast<Coord>(s1))) *
           (s1 - s0);
  }
  EXPECT_NEAR(acc, 1.0, 0.05);  // trapezoid bias on the steep head
  EXPECT_DOUBLE_EQ(m.pdf(10), 0.0);
  EXPECT_DOUBLE_EQ(m.pdf(3000), 0.0);
}

TEST(ShortCriticalArea, TwoParallelWires) {
  // Wires 100 wide, gap 100: a square defect of side s shorts them iff it
  // spans the gap; center strip height = s - 100.
  Region layer;
  layer.add(Rect{0, 0, 1000, 100});
  layer.add(Rect{0, 200, 1000, 300});
  EXPECT_EQ(short_critical_area(layer, 100), 0);
  const Area ca150 = short_critical_area(layer, 150);
  // Expected: (150 - 100) tall strip, ~1000 long (plus end effects < s).
  EXPECT_GE(ca150, 50 * 1000);
  EXPECT_LE(ca150, 50 * (1000 + 2 * 150));
}

TEST(ShortCriticalArea, MonotoneInDefectSize) {
  Region layer;
  layer.add(Rect{0, 0, 500, 100});
  layer.add(Rect{0, 180, 500, 280});
  layer.add(Rect{0, 400, 500, 500});
  Area prev = 0;
  for (const Coord s : {60, 100, 140, 200, 300, 400}) {
    const Area ca = short_critical_area(layer, s);
    EXPECT_GE(ca, prev) << "s=" << s;
    prev = ca;
  }
}

TEST(ShortCriticalArea, SingleNetNeverShorts) {
  Region layer;
  layer.add(Rect{0, 0, 1000, 100});
  layer.add(Rect{0, 0, 100, 1000});  // same connected net
  EXPECT_EQ(short_critical_area(layer, 500), 0);
}

TEST(OpenCriticalArea, ThinWireBreaks) {
  const Region wire{Rect{0, 0, 1000, 50}};
  EXPECT_EQ(open_critical_area(wire, 50), 0);  // defect == width: no break
  EXPECT_EQ(open_critical_area(wire, 80), static_cast<Area>(30) * 1000);
}

TEST(OpenCriticalArea, MonotoneInDefectSize) {
  const Region wire{Rect{0, 0, 2000, 56}};
  Area prev = 0;
  for (const Coord s : {40, 60, 100, 200, 400}) {
    const Area ca = open_critical_area(wire, s);
    EXPECT_GE(ca, prev);
    prev = ca;
  }
}

TEST(OpenCriticalArea, McAgreesOnStraightWire) {
  const Region wire{Rect{0, 0, 2000, 60}};
  const Coord s = 150;
  const Area analytic = open_critical_area(wire, s);
  const Area mc = open_critical_area_mc(wire, s, 20000, 99);
  // MC includes end effects; require agreement within 35%.
  EXPECT_NEAR(static_cast<double>(mc), static_cast<double>(analytic),
              0.35 * static_cast<double>(analytic));
}

TEST(AverageCriticalArea, WeightsSmallDefectsMore) {
  // ca(s) = s^2 (defect area); with 1/s^3 weighting the small sizes
  // dominate, so ECA is far below ca(xmax).
  DefectModel m;
  m.x0 = 40;
  m.xmax = 1000;
  const double eca = average_critical_area(
      [](Coord s) { return static_cast<Area>(s) * s; }, m, 64);
  EXPECT_GT(eca, static_cast<double>(40) * 40);
  EXPECT_LT(eca, static_cast<double>(1000) * 1000 / 10);
}

TEST(YieldModels, PoissonAndNegativeBinomial) {
  EXPECT_DOUBLE_EQ(poisson_yield(0.0), 1.0);
  EXPECT_NEAR(poisson_yield(1.0), 0.3678794, 1e-6);
  // NB approaches Poisson as alpha -> infinity.
  EXPECT_NEAR(negative_binomial_yield(1.0, 1e9), poisson_yield(1.0), 1e-6);
  // Clustering (small alpha) gives higher yield at equal lambda.
  EXPECT_GT(negative_binomial_yield(1.0, 0.5), poisson_yield(1.0));
}

TEST(LayerLambda, ScalesWithWireLength) {
  Region small;
  small.add(Rect{0, 0, 2000, 56});
  small.add(Rect{0, 200, 2000, 256});
  Region large;
  for (int i = 0; i < 10; ++i) {
    large.add(Rect{0, i * 200, 2000, i * 200 + 56});
  }
  DefectModel m;
  m.d0 = 100;
  const double ls = layer_lambda(small, m, /*shorts=*/true);
  const double ll = layer_lambda(large, m, true);
  EXPECT_GT(ll, 4 * ls);
  EXPECT_GT(poisson_yield(ls), poisson_yield(ll));
}

TEST(ViaYield, DoublingHelps) {
  const double f = 1e-4;
  const double y_all_single = via_yield(1000, 0, f);
  const double y_all_double = via_yield(0, 1000, f);
  EXPECT_GT(y_all_double, y_all_single);
  EXPECT_NEAR(y_all_double, 1.0, 1e-4);
  EXPECT_NEAR(y_all_single, std::exp(-1000 * f), 1e-3);
}

LayerMap via_design(std::uint64_t seed, int count) {
  Library lib{"v"};
  const auto c = lib.new_cell("c");
  Rng rng(seed);
  add_via_field(lib.cell(c), rng, Tech::standard(), {0, 0}, count);
  LayerMap m;
  for (const LayerKey k : {layers::kVia1, layers::kMetal1, layers::kMetal2}) {
    m.emplace(k, lib.flatten(c, k));
  }
  return m;
}

TEST(ViaDoubling, InsertsBesideIsolatedVias) {
  const LayerMap m = via_design(17, 30);
  const ViaDoublingResult res =
      double_vias(LayoutSnapshot(m), Tech::standard());
  EXPECT_EQ(res.singles_before, 30);
  EXPECT_GT(res.inserted, 15) << "open field: most vias must double";
  EXPECT_EQ(res.inserted + res.blocked, res.singles_before);
  // Every new via keeps spacing to the originals.
  const Tech& t = Tech::standard();
  for (const Region& nv : res.new_vias.components()) {
    const Coord d = region_distance(nv, m.at(layers::kVia1), t.via_space + 1);
    EXPECT_GE(d, t.via_space);
  }
}

TEST(ViaDoubling, RespectsCrowdedNeighbours) {
  // A tight via cluster: spacing blocks most redundant positions.
  Library lib{"v"};
  const auto c = lib.new_cell("c");
  const Tech& t = Tech::standard();
  // Grid at exactly min spacing: no room for any doubling between them.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      add_via(lib.cell(c), t,
              {i * (t.via_size + t.via_space), j * (t.via_size + t.via_space)},
              ViaStyle::kSymmetric);
    }
  }
  LayerMap m;
  for (const LayerKey k : {layers::kVia1, layers::kMetal1, layers::kMetal2}) {
    m.emplace(k, lib.flatten(c, k));
  }
  const ViaDoublingResult res = double_vias(LayoutSnapshot(m), t);
  // Only outer ring positions can work; the centre via must be blocked.
  EXPECT_LT(res.inserted, 9);
}

TEST(ViaDoubling, InsertedViasAreEnclosed) {
  const LayerMap m = via_design(23, 20);
  const Tech& t = Tech::standard();
  const ViaDoublingResult res = double_vias(LayoutSnapshot(m), t);
  ASSERT_GT(res.inserted, 0);
  const Region m1 = m.at(layers::kMetal1) | res.new_metal1;
  const Region m2 = m.at(layers::kMetal2) | res.new_metal2;
  const Coord enc = t.via_enclosure / 2;
  EXPECT_TRUE((res.new_vias.bloated(enc) - m1).empty());
  EXPECT_TRUE((res.new_vias.bloated(enc) - m2).empty());
}

TEST(NetAwareShorts, ConnectedThroughViaIsNotAShort) {
  // Two M2 stubs close together but strapped to the same M1 bus through
  // vias: layer-local analysis calls them a short risk, net-aware does not.
  Region stub_a{Rect{0, 0, 60, 400}};
  Region stub_b{Rect{160, 0, 220, 400}};  // 100 apart
  Region both = stub_a | stub_b;

  const Coord s = 200;  // bridges the 100 gap
  EXPECT_GT(short_critical_area(both, s), 0);

  // Same net label: no short.
  EXPECT_EQ(short_critical_area_nets({stub_a, stub_b}, {7, 7}, s), 0);
  // Different nets: matches the layer-local result.
  EXPECT_EQ(short_critical_area_nets({stub_a, stub_b}, {1, 2}, s),
            short_critical_area(both, s));
}

TEST(NetAwareShorts, MixedNetsCountOnlyCrossNetPairs) {
  // Three wires; the outer two share a net.
  Region w0{Rect{0, 0, 60, 1000}};
  Region w1{Rect{160, 0, 220, 1000}};
  Region w2{Rect{320, 0, 380, 1000}};
  const Coord s = 160;
  const Area all_distinct =
      short_critical_area_nets({w0, w1, w2}, {0, 1, 2}, s);
  const Area outer_shared =
      short_critical_area_nets({w0, w1, w2}, {0, 1, 0}, s);
  EXPECT_GT(all_distinct, 0);
  // w0-w2 are 260 apart (> s), so sharing their net changes nothing here;
  // but sharing w0-w1 removes that pair entirely.
  const Area adjacent_shared =
      short_critical_area_nets({w0, w1, w2}, {0, 0, 2}, s);
  EXPECT_LT(adjacent_shared, all_distinct);
  EXPECT_EQ(outer_shared, all_distinct);
}

}  // namespace
}  // namespace dfm
