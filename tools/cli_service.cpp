#include "cli_service.h"

#include "core/report.h"
#include "core/telemetry.h"
#include "service/client.h"
#include "service/loadgen.h"
#include "service/server.h"
#include "service/trace_merge.h"
#include "shard/remote_backend.h"
#include "shard/shard_server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <unistd.h>

namespace dfm::cli {

namespace {

using service::Json;
using service::LoadGenOptions;
using service::LoadGenReport;
using service::ServiceClient;
using service::ServiceOptions;
using service::ServiceServer;

/// Tiny argv walker: collects positionals, resolves --flag / --flag value.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  static Args parse(int argc, char** argv, int start,
                    const std::vector<std::string>& value_flags) {
    Args out;
    for (int i = start; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        out.positional.push_back(a);
        continue;
      }
      const bool takes_value =
          std::find(value_flags.begin(), value_flags.end(), a) !=
          value_flags.end();
      if (takes_value) {
        if (i + 1 >= argc) throw std::runtime_error(a + " needs a value");
        out.flags.emplace_back(a, argv[++i]);
      } else {
        out.flags.emplace_back(a, "");
      }
    }
    return out;
  }

  const std::string* get(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return &v;
    }
    return nullptr;
  }
  bool has(const std::string& name) const { return get(name) != nullptr; }
  std::string str(const std::string& name, const std::string& dflt) const {
    const std::string* v = get(name);
    return v ? *v : dflt;
  }
  long num(const std::string& name, long dflt) const {
    const std::string* v = get(name);
    if (!v) return dflt;
    char* end = nullptr;
    const long n = std::strtol(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0') {
      throw std::runtime_error(name + ": not a number: '" + *v + "'");
    }
    return n;
  }
};

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  for (std::size_t pos = 0; pos < s.size();) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    if (comma > pos) out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

// SIGTERM/SIGINT land on a self-pipe (the only async-signal-safe way to
// reach the server's shutdown path); a watcher thread turns the byte
// into a request_shutdown().
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_signal(int) {
  const char byte = 1;
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

void print_loadgen(const LoadGenReport& rep, const LoadGenOptions& opt) {
  // Parseable: tools/run_benches.sh greps these SERVICE lines.
  std::printf(
      "SERVICE clients=%u mode=%s requests=%llu p50_ms=%.3f p95_ms=%.3f "
      "p99_ms=%.3f trimmed_mean_ms=%.3f backpressure=%llu errors=%llu "
      "wall_ms=%.1f\n",
      opt.clients, opt.mode.c_str(),
      static_cast<unsigned long long>(rep.requests), rep.p50_ms, rep.p95_ms,
      rep.p99_ms, rep.trimmed_mean_ms,
      static_cast<unsigned long long>(rep.backpressure),
      static_cast<unsigned long long>(rep.errors), rep.wall_ms);
}

}  // namespace

int cmd_serve(int argc, char** argv, unsigned threads) {
  const Args args = Args::parse(
      argc, argv, 2,
      {"--socket", "--tcp", "--workers", "--pool-threads", "--max-sessions",
       "--max-queue", "--idle-timeout-ms", "--deadline-ms", "--passes",
       "--litho-tile", "--litho-fast", "--memory-budget", "--snapshot-shm",
       "--fix-max-iters", "--fix-min-gain", "--fix-moves", "--trace-out",
       "--flight-records", "--slow-ms", "--shards", "--shard-bin",
       "--shard-dir"});
  if (!args.positional.empty()) {
    throw std::runtime_error(
        "usage: dfmkit serve [--socket <path>] [--tcp <port>] [--workers N] "
        "[--pool-threads N] [--max-sessions N] [--max-queue N] "
        "[--idle-timeout-ms N] [--deadline-ms N] [--passes a,b,...] "
        "[--litho-tile N] [--litho-fast auto|fft|direct|off] "
        "[--memory-budget <size>] [--snapshot-shm <prefix>] "
        "[--fix-max-iters N] [--fix-min-gain G] [--fix-moves a,b,...] "
        "[--trace-out <path>] [--flight-records N] [--slow-ms MS] "
        "[--shards N] [--shard-bin <path>] [--shard-dir <dir>] "
        "[--debug-ops]");
  }

  ServiceOptions opt;
  opt.unix_path = args.str("--socket", "");
  opt.tcp_port = args.has("--tcp")
                     ? static_cast<int>(args.num("--tcp", 0))
                     : -1;
  if (opt.unix_path.empty() && opt.tcp_port < 0) {
    opt.unix_path = "dfmkit.sock";  // default: unix socket in the cwd
  }
  opt.workers = static_cast<unsigned>(args.num("--workers", 2));
  opt.pool_threads = static_cast<unsigned>(
      args.num("--pool-threads", static_cast<long>(threads)));
  opt.max_sessions = static_cast<std::size_t>(args.num("--max-sessions", 8));
  opt.max_queue = static_cast<std::size_t>(args.num("--max-queue", 16));
  opt.idle_timeout_ms =
      static_cast<std::uint64_t>(args.num("--idle-timeout-ms", 0));
  opt.default_deadline_ms =
      static_cast<std::uint64_t>(args.num("--deadline-ms", 0));
  opt.enable_debug_ops = args.has("--debug-ops");
  opt.flight_records =
      static_cast<std::size_t>(args.num("--flight-records", 256));
  const std::string slow_ms = args.str("--slow-ms", "");
  if (!slow_ms.empty()) {
    char* end = nullptr;
    opt.slow_request_ms = std::strtod(slow_ms.c_str(), &end);
    if (end == slow_ms.c_str() || *end != '\0') {
      throw std::runtime_error("--slow-ms: not a number: '" + slow_ms + "'");
    }
  }
  opt.flow.tech = Tech::standard();
  opt.flow.model.sigma = 25;
  opt.flow.model.px = 5;
  for (const std::string& name : split_commas(args.str("--passes", ""))) {
    if (canonical_flow_pass(name).empty()) {
      throw std::runtime_error("--passes: unknown pass '" + name + "'");
    }
    opt.flow.passes.push_back(name);
  }
  const long litho_tile = args.num("--litho-tile", 0);
  if (litho_tile > 0) opt.flow.litho_tile = litho_tile;
  // Per-session hydrated snapshot byte budget; every session the daemon
  // opens runs its flow out-of-core under it.
  const std::string budget = args.str("--memory-budget", "");
  if (!budget.empty() &&
      !parse_byte_size(budget, &opt.flow.memory_budget)) {
    throw std::runtime_error(
        "--memory-budget: expected a byte size like 64M, got '" + budget +
        "'");
  }
  // One shared flattened copy per opened file, machine-wide, keyed by
  // this prefix; sessions hydrate from it instead of re-reading the file.
  opt.snapshot_shm = args.str("--snapshot-shm", "");
  // Defaults for the "fix" op, per-request overridable — threaded the
  // same way --litho-fast / --memory-budget configure every session.
  opt.flow.fix.max_iters =
      static_cast<int>(args.num("--fix-max-iters", opt.flow.fix.max_iters));
  const std::string fix_gain = args.str("--fix-min-gain", "");
  if (!fix_gain.empty()) {
    char* end = nullptr;
    opt.flow.fix.min_gain = std::strtod(fix_gain.c_str(), &end);
    if (end == fix_gain.c_str() || *end != '\0') {
      throw std::runtime_error("--fix-min-gain: not a number: '" + fix_gain +
                               "'");
    }
  }
  for (const std::string& name : split_commas(args.str("--fix-moves", ""))) {
    if (!parse_fix_kind(name)) {
      throw std::runtime_error("--fix-moves: unknown move '" + name + "'");
    }
    opt.flow.fix.moves.push_back(name);
  }
  const std::string litho_fast = args.str("--litho-fast", "");
  if (!litho_fast.empty()) {
    if (litho_fast == "auto") {
      opt.flow.litho_fast = LithoFastMode::kAuto;
    } else if (litho_fast == "fft") {
      opt.flow.litho_fast = LithoFastMode::kFft;
    } else if (litho_fast == "direct") {
      opt.flow.litho_fast = LithoFastMode::kDirect;
    } else if (litho_fast == "off") {
      opt.flow.litho_fast = LithoFastMode::kOff;
    } else {
      throw std::runtime_error(
          "--litho-fast: expected auto|fft|direct|off, got '" + litho_fast +
          "'");
    }
  }

  // Distributed sharding: every session this daemon opens (default top
  // only) gets its own fleet of `dfmkit shard-serve` worker processes.
  // The factory lives here, not in dfm_service, because the shard
  // library sits above the service library in the dependency order.
  const int shards = static_cast<int>(args.num("--shards", 0));
  if (shards > 0) {
    const std::string bin =
        args.str("--shard-bin", shard::self_executable_path());
    const std::string dir_base = args.str("--shard-dir", "");
    const DfmFlowOptions flow = opt.flow;
    opt.shard_factory =
        [shards, bin, dir_base,
         flow](const std::string& path) -> std::unique_ptr<ShardBackend> {
      shard::RemoteShardConfig sc;
      sc.worker.tech = flow.tech;
      sc.worker.model = flow.model;
      sc.worker.litho_tile = flow.litho_tile;
      sc.worker.litho_edge_tolerance = flow.litho_edge_tolerance;
      sc.worker.litho_fast = flow.litho_fast;
      sc.layout_path = path;
      sc.binary = bin;
      sc.socket_dir = shard::make_shard_scratch_dir(dir_base);
      sc.shards = shards;
      return std::make_unique<shard::RemoteShardBackend>(
          shard::shard_extent_of(path), std::move(sc));
    };
  }

  const std::string trace_path = args.str("--trace-out", "");
  if (!trace_path.empty() && !telemetry::compiled_in()) {
    std::fprintf(stderr,
                 "dfmkit: --trace-out: telemetry was compiled out "
                 "(DFMKIT_TELEMETRY=OFF); the trace will be empty\n");
  }
  if (!trace_path.empty()) {
    telemetry::set_thread_name("main");
    telemetry::set_enabled(true);
  }

  ServiceServer server(std::move(opt));
  server.start();
  if (!server.options().unix_path.empty()) {
    std::printf("dfmkit serve: listening on unix:%s\n",
                server.options().unix_path.c_str());
  }
  if (server.tcp_port() >= 0) {
    std::printf("dfmkit serve: listening on tcp:127.0.0.1:%d\n",
                server.tcp_port());
  }
  std::fflush(stdout);  // readiness marker for scripts tailing the log

  if (::pipe(g_signal_pipe) != 0) {
    throw std::runtime_error("serve: cannot create signal pipe");
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::thread watcher([&server] {
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    server.request_shutdown();
  });

  // Blocks until a SIGTERM/SIGINT or a client "shutdown" op drains the
  // server.
  server.wait();
  std::printf("dfmkit serve: drained, exiting\n");

  // Unblock the watcher if shutdown came from a client op.
  on_signal(0);
  watcher.join();
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);

  if (!trace_path.empty()) {
    telemetry::set_enabled(false);
    const telemetry::MetricsSnapshot metrics = telemetry::metrics_snapshot();
    const telemetry::TraceSnapshot trace = telemetry::drain();
    std::ofstream out(trace_path);
    if (!out) throw std::runtime_error("cannot write " + trace_path);
    out << telemetry::chrome_trace_json(trace, metrics);
    std::printf("wrote %s (%zu spans, %u threads)\n", trace_path.c_str(),
                trace.total_events(),
                static_cast<unsigned>(trace.threads.size()));
  }
  return 0;
}

int cmd_shard_serve(int argc, char** argv, unsigned threads) {
  const Args args = Args::parse(argc, argv, 2,
                                {"--socket", "--threads", "--trace-out"});
  shard::ShardServeOptions opt;
  opt.unix_path = args.str("--socket", "");
  if (opt.unix_path.empty() || !args.positional.empty()) {
    throw std::runtime_error(
        "usage: dfmkit shard-serve --socket <path> [--threads N] [--once] "
        "[--trace-out <path>]");
  }
  opt.threads = static_cast<unsigned>(
      args.num("--threads", static_cast<long>(threads)));
  opt.once = args.has("--once");
  opt.trace_out = args.str("--trace-out", "");
  if (!opt.trace_out.empty() && !telemetry::compiled_in()) {
    std::fprintf(stderr,
                 "dfmkit: --trace-out: telemetry was compiled out "
                 "(DFMKIT_TELEMETRY=OFF); the trace will be empty\n");
  }
  return shard::run_shard_server(opt);
}

int cmd_client(int argc, char** argv) {
  std::vector<std::string> value_flags = {
      "--socket", "--tcp", "--json", "--top", "--passes", "--litho-tile",
      "--clients", "--requests", "--mode", "--patch", "--max-iters",
      "--min-gain", "--moves", "--trace-out", "--n"};
  // For the table-rendering actions --json is a boolean toggle (print
  // the raw reply), not a path; the walker needs the arity up front.
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "stats" || a == "metrics" || a == "debug") {
      value_flags.erase(
          std::remove(value_flags.begin(), value_flags.end(), "--json"),
          value_flags.end());
      break;
    }
  }
  const Args args = Args::parse(argc, argv, 2, value_flags);
  const auto usage = [] {
    return std::runtime_error(
        "usage: dfmkit client [--socket <path> | --tcp <port>] "
        "[--trace-out <path>] <action>\n"
        "  actions:\n"
        "    ping | version | shutdown\n"
        "    stats [--json]\n"
        "    metrics [--json]\n"
        "    debug [--n N] [--json]\n"
        "    open <layout> [--top <cell>] [--passes a,b,...] "
        "[--litho-tile N]\n"
        "    edit <session> <layer>:<x0>,<y0>,<x1>,<y1>[:remove]...\n"
        "    flow <session> [--json <path>]\n"
        "    fix <session> [--max-iters N] [--min-gain G] [--moves a,b,...] "
        "[--json <path>]\n"
        "    close <session>\n"
        "    bench <layout> [--clients N] [--requests N] "
        "[--mode inc|cold|flow] [--patch N] [--top <cell>] "
        "[--passes a,b,...] [--litho-tile N]");
  };
  if (args.positional.empty()) throw usage();
  const std::string action = args.positional[0];
  const std::string socket = args.str("--socket", "");
  const int tcp = args.has("--tcp")
                      ? static_cast<int>(args.num("--tcp", 0))
                      : -1;

  const auto connect = [&]() -> ServiceClient {
    if (!socket.empty()) return ServiceClient::connect_unix(socket);
    if (tcp >= 0) return ServiceClient::connect_tcp(tcp);
    return ServiceClient::connect_unix("dfmkit.sock");
  };

  // Every action returns through run_action so --trace-out can close
  // the recording epoch afterwards and write the client-side trace.
  const auto run_action = [&]() -> int {
  if (action == "bench") {
    if (args.positional.size() < 2) throw usage();
    LoadGenOptions opt;
    opt.unix_path = (socket.empty() && tcp < 0) ? "dfmkit.sock" : socket;
    opt.tcp_port = tcp;
    opt.layout_path = args.positional[1];
    opt.top = args.str("--top", "");
    opt.passes = split_commas(args.str("--passes", ""));
    opt.litho_tile = args.num("--litho-tile", 0);
    opt.clients = static_cast<unsigned>(args.num("--clients", 4));
    opt.requests_per_client =
        static_cast<unsigned>(args.num("--requests", 16));
    opt.mode = args.str("--mode", "inc");
    opt.patch = args.num("--patch", 400);
    const LoadGenReport rep = service::run_load(opt);
    print_loadgen(rep, opt);
    return rep.errors == 0 ? 0 : 1;
  }

  ServiceClient client = connect();
  if (action == "ping") {
    client.ping();
    std::printf("ok\n");
    return 0;
  }
  if (action == "version") {
    const Json reply = client.version();
    std::printf("server %s (%s) protocol %lld\n",
                reply.get_string("revision", "?").c_str(),
                reply.get_string("build", "?").c_str(),
                static_cast<long long>(reply.get_int("protocol", 0)));
    return 0;
  }
  if (action == "stats") {
    const Json reply = client.stats();
    if (args.has("--json")) {
      std::printf("%s\n", reply.dump().c_str());
      return 0;
    }
    // Same aligned Table the flow CLI renders its summaries with.
    Table table("server stats");
    table.set_header({"stat", "value"});
    for (const auto& [key, value] : reply.as_object()) {
      if (key == "id" || key == "ok" || key == "op") continue;
      std::string text;
      if (value.is_bool()) {
        text = value.as_bool() ? "yes" : "no";
      } else if (value.is_int()) {
        text = Table::num(value.as_int());
      } else if (value.is_number()) {
        text = Table::num(value.as_double(), 3);
      } else if (value.is_string()) {
        text = value.as_string();
      } else {
        text = value.dump();
      }
      table.add_row({key, text});
    }
    table.print();
    return 0;
  }
  if (action == "metrics") {
    const Json reply = client.metrics();
    if (args.has("--json")) {
      std::printf("%s\n", reply.dump().c_str());
      return 0;
    }
    // Prometheus text exposition, verbatim (already newline-terminated).
    std::fputs(reply.get_string("text", "").c_str(), stdout);
    return 0;
  }
  if (action == "debug") {
    const Json reply = client.debug(args.num("--n", 32));
    if (args.has("--json")) {
      std::printf("%s\n", reply.dump().c_str());
      return 0;
    }
    Table table("flight recorder (newest first)");
    table.set_header({"seq", "id", "op", "session", "trace", "queue_ms",
                      "total_ms", "outcome"});
    const auto num_of = [](const Json& obj, const char* key) {
      const Json* v = obj.find(key);
      return v != nullptr && v->is_number() ? v->as_double() : 0.0;
    };
    if (const Json* requests = reply.find("requests")) {
      for (const Json& rec : requests->as_array()) {
        std::string trace = rec.get_string("trace_id", "");
        if (trace.empty()) trace = "-";
        if (trace.size() > 8) trace.resize(8);  // enough to eyeball-match
        table.add_row({Table::num(rec.get_int("seq", 0)),
                       Table::num(rec.get_int("id", 0)),
                       rec.get_string("op", "?"),
                       rec.get_string("session", "-"), trace,
                       Table::num(num_of(rec, "queue_ms"), 3),
                       Table::num(num_of(rec, "total_ms"), 3),
                       rec.get_string("outcome", "?")});
      }
    }
    table.print();
    std::printf("recorded %lld request(s) total, ring capacity %lld\n",
                static_cast<long long>(reply.get_int("recorded", 0)),
                static_cast<long long>(reply.get_int("capacity", 0)));
    return 0;
  }
  if (action == "shutdown") {
    client.shutdown_server();
    std::printf("shutdown requested\n");
    return 0;
  }
  if (action == "open") {
    if (args.positional.size() < 2) throw usage();
    const Json reply =
        client.open(args.positional[1], args.str("--top", ""),
                    split_commas(args.str("--passes", "")),
                    args.num("--litho-tile", 0));
    std::printf("session %s\n", reply.get_string("session", "?").c_str());
    return 0;
  }
  if (action == "edit") {
    if (args.positional.size() < 3) throw usage();
    Json::Array edits;
    for (std::size_t i = 2; i < args.positional.size(); ++i) {
      // <layer>:<x0>,<y0>,<x1>,<y1>[:remove] — same spec as flow --edit.
      const std::string& spec = args.positional[i];
      const std::size_t c1 = spec.find(':');
      if (c1 == std::string::npos) throw usage();
      const std::size_t c2 = spec.find(':', c1 + 1);
      const std::string layer = spec.substr(0, c1);
      const std::string coords = spec.substr(
          c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
      const bool remove =
          c2 != std::string::npos && spec.substr(c2 + 1) == "remove";
      std::vector<std::int64_t> xy;
      for (const std::string& tok : split_commas(coords)) {
        xy.push_back(std::strtoll(tok.c_str(), nullptr, 10));
      }
      if (xy.size() != 4) throw usage();
      edits.push_back(
          ServiceClient::make_edit(layer, xy[0], xy[1], xy[2], xy[3], remove));
    }
    const Json reply = client.edit(args.positional[1], std::move(edits));
    std::printf("ok %s\n", reply.get_string("session", "?").c_str());
    return 0;
  }
  if (action == "flow") {
    if (args.positional.size() < 2) throw usage();
    const Json reply = client.flow(args.positional[1]);
    const std::string report = reply.get_string("report", "");
    const std::string json_path = args.str("--json", "");
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) throw std::runtime_error("cannot write " + json_path);
      out << report;
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("%s\n", report.c_str());
    }
    return 0;
  }
  if (action == "fix") {
    if (args.positional.size() < 2) throw usage();
    const std::string gain = args.str("--min-gain", "");
    const Json reply = client.fix(
        args.positional[1], args.num("--max-iters", -1),
        gain.empty() ? -1 : std::strtod(gain.c_str(), nullptr),
        split_commas(args.str("--moves", "")));
    const std::string outcome = reply.get_string("outcome", "");
    const std::string json_path = args.str("--json", "");
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) throw std::runtime_error("cannot write " + json_path);
      out << outcome;
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("%s", outcome.c_str());
    }
    return 0;
  }
  if (action == "close") {
    if (args.positional.size() < 2) throw usage();
    client.close_session(args.positional[1]);
    std::printf("closed %s\n", args.positional[1].c_str());
    return 0;
  }
  throw usage();
  };  // run_action

  // --trace-out opens a recording epoch around the whole action, so
  // every ServiceClient call records a client/request span and stamps
  // trace context on the wire (see `dfmkit trace-merge`).
  const std::string trace_path = args.str("--trace-out", "");
  if (!trace_path.empty()) {
    if (!telemetry::compiled_in()) {
      std::fprintf(stderr,
                   "dfmkit: --trace-out: telemetry was compiled out "
                   "(DFMKIT_TELEMETRY=OFF); the trace will be empty\n");
    }
    telemetry::set_thread_name("client");
    telemetry::set_enabled(true);
  }
  const int rc = run_action();
  if (!trace_path.empty()) {
    telemetry::set_enabled(false);
    const telemetry::MetricsSnapshot metrics = telemetry::metrics_snapshot();
    const telemetry::TraceSnapshot trace = telemetry::drain();
    std::ofstream out(trace_path);
    if (!out) throw std::runtime_error("cannot write " + trace_path);
    out << telemetry::chrome_trace_json(trace, metrics);
    std::printf("wrote %s (%zu spans, %u threads)\n", trace_path.c_str(),
                trace.total_events(),
                static_cast<unsigned>(trace.threads.size()));
  }
  return rc;
}

namespace {

/// One derived percentile row of `dfmkit top`: a latency histogram
/// rebuilt from the metrics op's JSON exposition.
telemetry::HistogramSnapshot parse_histogram(const Json& h) {
  telemetry::HistogramSnapshot out;
  if (const Json* bounds = h.find("bounds")) {
    for (const Json& b : bounds->as_array()) out.bounds.push_back(b.as_double());
  }
  if (const Json* counts = h.find("counts")) {
    for (const Json& c : counts->as_array()) {
      out.counts.push_back(static_cast<std::uint64_t>(c.as_int()));
    }
  }
  out.total = static_cast<std::uint64_t>(h.get_int("total", 0));
  return out;
}

}  // namespace

int cmd_top(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, 2,
                                {"--socket", "--tcp", "--interval-ms",
                                 "--count"});
  if (!args.positional.empty()) {
    throw std::runtime_error(
        "usage: dfmkit top [--socket <path> | --tcp <port>] "
        "[--interval-ms N] [--count N] [--no-clear]\n"
        "  Polls a running daemon's stats and metrics ops and renders\n"
        "  queue depth, sessions, and per-op latency percentiles.\n"
        "  --count 0 (the default) polls until interrupted.");
  }
  const std::string socket = args.str("--socket", "");
  const int tcp = args.has("--tcp")
                      ? static_cast<int>(args.num("--tcp", 0))
                      : -1;
  const long interval_ms = std::max(1L, args.num("--interval-ms", 1000));
  const long count = args.num("--count", 0);
  const bool clear = !args.has("--no-clear") && ::isatty(STDOUT_FILENO);

  const auto connect = [&]() -> ServiceClient {
    if (!socket.empty()) return ServiceClient::connect_unix(socket);
    if (tcp >= 0) return ServiceClient::connect_tcp(tcp);
    return ServiceClient::connect_unix("dfmkit.sock");
  };
  ServiceClient client = connect();

  for (long tick = 0; count == 0 || tick < count; ++tick) {
    if (tick > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const Json stats = client.stats();
    const Json metrics = client.metrics();

    if (clear) std::fputs("\033[H\033[2J", stdout);
    Table overview("dfmkit top — server overview");
    overview.set_header({"stat", "value"});
    for (const char* key :
         {"queue_depth", "max_queue_depth", "active_sessions",
          "requests_admitted", "requests_completed", "rejected_backpressure",
          "deadline_exceeded", "slow_requests"}) {
      overview.add_row({key, Table::num(stats.get_int(key, 0))});
    }
    overview.print();

    // Per-op latency percentiles, derived client-side from the bucket
    // snapshots the metrics op exposes (the server never computes
    // percentiles; see DESIGN.md "Observability").
    Table ops("per-op latency (ms)");
    ops.set_header(
        {"op", "count", "p50", "p95", "p99", "queue p50", "queue p95"});
    bool any = false;
    const Json exposition = Json::parse(metrics.get_string("json", "{}"));
    if (const Json* hists = exposition.find("histograms")) {
      static const std::string prefix = "service.op.";
      static const std::string req_suffix = ".request_ms";
      for (const auto& [name, h] : hists->as_object()) {
        if (name.rfind(prefix, 0) != 0) continue;
        if (name.size() < prefix.size() + req_suffix.size() ||
            name.compare(name.size() - req_suffix.size(), req_suffix.size(),
                         req_suffix) != 0) {
          continue;
        }
        const std::string op = name.substr(
            prefix.size(), name.size() - prefix.size() - req_suffix.size());
        const telemetry::HistogramSnapshot req = parse_histogram(h);
        std::string qp50 = "-";
        std::string qp95 = "-";
        if (const Json* qh =
                hists->find(prefix + op + ".queue_wait_ms")) {
          const telemetry::HistogramSnapshot queue = parse_histogram(*qh);
          if (queue.total > 0) {
            qp50 = Table::num(telemetry::histogram_quantile(queue, 0.50), 3);
            qp95 = Table::num(telemetry::histogram_quantile(queue, 0.95), 3);
          }
        }
        ops.add_row({op, Table::num(static_cast<std::int64_t>(req.total)),
                     Table::num(telemetry::histogram_quantile(req, 0.50), 3),
                     Table::num(telemetry::histogram_quantile(req, 0.95), 3),
                     Table::num(telemetry::histogram_quantile(req, 0.99), 3),
                     qp50, qp95});
        any = true;
      }
    }
    if (any) {
      ops.print();
    } else if (!metrics.get_bool("telemetry", true)) {
      std::printf(
          "(per-op histograms unavailable: server built with "
          "DFMKIT_TELEMETRY=OFF)\n");
    } else {
      std::printf("(no per-op latency samples yet)\n");
    }
    std::fflush(stdout);
  }
  return 0;
}

int cmd_trace_merge(int argc, char** argv) {
  const Args args = Args::parse(argc, argv, 2, {"--out"});
  if (args.positional.size() < 2) {
    throw std::runtime_error(
        "usage: dfmkit trace-merge <client_trace.json> <server_trace.json> "
        "[more_server_traces.json ...] [--out <merged.json>]\n"
        "  Stitches --trace-out files into one Chrome trace: the client\n"
        "  (or shard coordinator) process plus every server/worker\n"
        "  process on a shared timeline, with flow arrows linking each\n"
        "  client/request span to the service/request (daemon) or\n"
        "  shard/request (worker) span it parented (protocol v3/v4\n"
        "  trace context).");
  }
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot read " + path);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string out_path = args.str("--out", "merged_trace.json");
  std::vector<std::string> servers;
  for (std::size_t i = 1; i < args.positional.size(); ++i) {
    servers.push_back(slurp(args.positional[i]));
  }
  service::TraceMergeStats stats;
  const std::string merged = service::merge_chrome_traces_many(
      slurp(args.positional[0]), servers, &stats);
  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  out << merged;
  std::printf(
      "wrote %s: %zu client + %zu server events, %zu request(s) linked "
      "(%zu nested after alignment), clock offset %.1f us\n",
      out_path.c_str(), stats.client_events, stats.server_events,
      stats.linked_requests, stats.nested, stats.offset_us);
  if (stats.linked_requests == 0) {
    std::fprintf(stderr,
                 "dfmkit trace-merge: no spans linked — was the client run "
                 "with --trace-out against a tracing server?\n");
  }
  return 0;
}

}  // namespace dfm::cli
