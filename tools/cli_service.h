// The service-facing dfmkit subcommands, split out of dfmkit_cli.cpp:
//   dfmkit serve   — run the resident analysis daemon
//   dfmkit client  — drive a running daemon (one-shot ops or load gen)
#pragma once

namespace dfm::cli {

/// `dfmkit serve ...`; argv/argc are main()'s (argv[1] == "serve").
/// `threads` is the global --threads value (compute pool size).
int cmd_serve(int argc, char** argv, unsigned threads);

/// `dfmkit client ...`.
int cmd_client(int argc, char** argv);

}  // namespace dfm::cli
