// The service-facing dfmkit subcommands, split out of dfmkit_cli.cpp:
//   dfmkit serve       — run the resident analysis daemon
//   dfmkit shard-serve — run one distributed-analysis shard worker
//   dfmkit client      — drive a running daemon (one-shot ops or load gen)
//   dfmkit top         — polling live view of a daemon's queue/sessions/
//                        per-op latency percentiles
//   dfmkit trace-merge — stitch a client and a server Chrome trace into
//                        one cross-process timeline
#pragma once

namespace dfm::cli {

/// `dfmkit serve ...`; argv/argc are main()'s (argv[1] == "serve").
/// `threads` is the global --threads value (compute pool size).
int cmd_serve(int argc, char** argv, unsigned threads);

/// `dfmkit shard-serve --socket <path> [--threads N] [--once]
/// [--trace-out <path>]` — one protocol-v4 shard worker (src/shard/).
int cmd_shard_serve(int argc, char** argv, unsigned threads);

/// `dfmkit client ...`.
int cmd_client(int argc, char** argv);

/// `dfmkit top ...`.
int cmd_top(int argc, char** argv);

/// `dfmkit trace-merge <client.json> <server.json> [--out <path>]`.
int cmd_trace_merge(int argc, char** argv);

}  // namespace dfm::cli
