// dfmkit — command-line driver for the library.
//
//   dfmkit [--threads N] <command> ...
//
//   dfmkit gen <out.gds> [seed]        generate a demo design
//   dfmkit info <in.gds>               library summary
//   dfmkit drc <in.gds> [top]          run the standard DRC deck
//   dfmkit drcplus <in.gds> [top]      DRC + pattern rules
//   dfmkit flow [--json <path>] [--trace-out <path>] [--passes a,b,...]
//               [--litho-fast auto|fft|direct|off]
//               [--memory-budget <size>] [--stream]
//               [--edit <spec>]... <in.gds> [top]
//                                      full DFM flow + scoreboard; --json
//                                      writes the per-pass trace +
//                                      scorecard as machine-readable JSON
//                                      (schema documented in DESIGN.md).
//                                      --trace-out records hierarchical
//                                      telemetry spans and writes a
//                                      Chrome trace-event file (open in
//                                      Perfetto / chrome://tracing).
//                                      --passes runs a subset (drc, litho,
//                                      vias, nets, caa, ...); --litho-fast
//                                      picks the litho convolution: auto
//                                      (default) chooses FFT vs direct per
//                                      tile and enables the conservative
//                                      hotspot prefilter, off is the
//                                      historical path bit for bit; --edit
//                                      <layer>:<x0>,<y0>,<x1>,<y1>[:remove]
//                                      applies rect edits one by one
//                                      through the incremental session
//                                      and re-analyzes only the damage;
//                                      --memory-budget <size> (e.g. 64M,
//                                      or the DFMKIT_SNAPSHOT_BUDGET env
//                                      var) caps hydrated snapshot bytes
//                                      — the flow evicts and re-hydrates
//                                      at pass boundaries, report bit-
//                                      identical at any budget; --stream
//                                      runs out-of-core from the mmap'd
//                                      file without materializing the
//                                      cell hierarchy; --shards N fans
//                                      unit-parallel work out to N
//                                      shard-serve worker processes —
//                                      the report is byte-identical at
//                                      any shard count
//   dfmkit fix [--max-iters N] [--min-gain G] [--moves a,b,...]
//              [--json <path>] [--out <path>] [--expect-improvement]
//              <in.gds> [top]
//                                      score-gated auto-fix loop: propose
//                                      repairs at reported violations
//                                      (via doubling, wire spreading,
//                                      hotspot retargeting, fill, pattern
//                                      repairs), verify each through the
//                                      incremental flow, keep only fixes
//                                      that raise the composite without
//                                      new violations. --moves restricts
//                                      the proposal kinds (pattern_via,
//                                      pattern_pinch, via_double, spread,
//                                      retarget, fill); --json writes the
//                                      step-by-step outcome; --out writes
//                                      the repaired layout; with
//                                      --expect-improvement the exit code
//                                      is 1 unless the composite strictly
//                                      improved (the CI gate)
//   dfmkit catalog <in.gds> [top]      via-enclosure pattern catalog
//   dfmkit svg <in.gds> <out.svg> [top]  render to SVG
//   dfmkit serve ...                   resident analysis daemon (sessions,
//                                      incremental edits, backpressure)
//                                      over a unix socket / loopback TCP;
//                                      see tools/cli_service.cpp
//   dfmkit client ...                  drive a running daemon: one-shot
//                                      ops (open/edit/flow/close/stats/
//                                      metrics/debug/shutdown) or `bench`
//                                      load storms; --trace-out records
//                                      client-side request spans and
//                                      stamps trace context on the wire
//   dfmkit top ...                     polling live view of a daemon:
//                                      queue depth, sessions, per-op
//                                      latency percentiles
//   dfmkit trace-merge ...             stitch a client + server Chrome
//                                      trace pair into one cross-process
//                                      timeline with flow arrows
//   dfmkit --version                   build stamp: git revision +
//                                      build configuration
//
// --threads N caps the parallelism of the heavy passes (0, the default,
// means hardware concurrency; 1 forces the serial path). Results are
// bit-identical for every N.
#include "cli_service.h"
#include "core/dfm_flow.h"
#include "core/fix_engine.h"
#include "core/incremental.h"
#include "core/version.h"
#include "core/parallel.h"
#include "core/report.h"
#include "core/snapshot.h"
#include "core/stream_source.h"
#include "core/telemetry.h"
#include "gdsii/gdsii.h"
#include "oasis/oasis.h"
#include "gen/generators.h"
#include "layout/svg.h"
#include "pattern/catalog.h"
#include "shard/remote_backend.h"

#include <cstdio>
#include <memory>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

namespace {

using namespace dfm;

unsigned g_threads = 0;  // --threads; 0 = hardware concurrency

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Reads .gds or .oas by extension.
Library read_layout(const std::string& path) {
  if (ends_with(path, ".oas") || ends_with(path, ".oasis")) {
    return read_oasis_file(path);
  }
  return read_gdsii_file(path);
}

void write_layout(const Library& lib, const std::string& path) {
  if (ends_with(path, ".oas") || ends_with(path, ".oasis")) {
    write_oasis_file(lib, path);
  } else {
    write_gdsii_file(lib, path);
  }
}

std::uint32_t pick_top(const Library& lib, int argc, char** argv, int index) {
  if (argc > index) return lib.index_of(argv[index]);
  const auto tops = lib.top_cells();
  if (tops.empty()) throw std::runtime_error("library has no cells");
  return tops.front();
}

int cmd_gen(int argc, char** argv) {
  if (argc < 3) throw std::runtime_error("usage: dfmkit gen <out.gds> [seed]");
  DesignParams p;
  p.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  p.name = "dfmkit_demo";
  p.rows = 4;
  p.cells_per_row = 10;
  p.routes = 30;
  const Library lib = generate_design(p);
  write_layout(lib, argv[2]);
  std::printf("wrote %s: %zu cells, %zu flat shapes\n", argv[2],
              lib.cell_count(),
              lib.flat_shape_count(lib.top_cells().front()));
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) throw std::runtime_error("usage: dfmkit info <in.gds>");
  const Library lib = read_layout(argv[2]);
  std::printf("library '%s'  dbu/uu=%.0f\n", lib.name().c_str(),
              lib.dbu_per_uu());
  Table t("cells");
  t.set_header({"cell", "shapes", "refs", "bbox"});
  for (const Cell& c : lib.cells()) {
    t.add_row({c.name(), std::to_string(c.shape_count()),
               std::to_string(c.refs().size()),
               to_string(lib.bbox(lib.index_of(c.name())))});
  }
  t.print();
  std::printf("layers:");
  for (const LayerKey k : lib.layers()) std::printf(" %s", to_string(k).c_str());
  std::printf("\n");
  return 0;
}

int cmd_drc(int argc, char** argv, bool plus) {
  if (argc < 3) throw std::runtime_error("usage: dfmkit drc <in.gds> [top]");
  const Library lib = read_layout(argv[2]);
  const std::uint32_t top = pick_top(lib, argc, argv, 3);
  const Tech& tech = Tech::standard();
  ThreadPool pool(g_threads);
  const LayoutSnapshot snap(lib, top, &pool);
  if (!plus) {
    const DrcEngine engine{RuleDeck::standard(tech)};
    const DrcResult res = engine.run(snap, DrcOptions{&pool});
    Table t("DRC: " + lib.cell(top).name());
    t.set_header({"rule", "violations"});
    for (const auto& [rule, n] : res.count_by_rule()) {
      t.add_row({rule, std::to_string(n)});
    }
    t.print();
    std::printf("total: %zu\n", res.violations.size());
    return res.clean() ? 0 : 1;
  }
  const DrcPlusEngine engine{DrcPlusDeck::standard(tech)};
  const DrcPlusResult res = engine.run(snap, DrcPlusOptions{&pool});
  Table t("DRC-Plus: " + lib.cell(top).name());
  t.set_header({"check", "hits"});
  for (const auto& [rule, n] : res.drc.count_by_rule()) {
    t.add_row({rule, std::to_string(n)});
  }
  for (std::size_t i = 0; i < engine.deck().pattern_sets.size(); ++i) {
    for (const PatternMatch& m : res.matches[i]) {
      t.add_row({engine.deck().pattern_sets[i].rules[m.rule_index].name, "1"});
    }
  }
  t.print();
  std::printf("pattern hits: %zu\n", res.pattern_match_count());
  return 0;
}

LayerKey layer_by_name(const std::string& name) {
  if (name == "m1") return layers::kMetal1;
  if (name == "m2") return layers::kMetal2;
  if (name == "via1") return layers::kVia1;
  if (name == "poly") return layers::kPoly;
  if (name == "contact") return layers::kContact;
  if (name == "diff") return layers::kDiff;
  throw std::runtime_error("unknown layer '" + name +
                           "' (m1|m2|via1|poly|contact|diff)");
}

struct CliEdit {
  LayerKey layer{};
  Rect rect = Rect::empty();
  bool remove = false;
};

/// Parses --edit <layer>:<x0>,<y0>,<x1>,<y1>[:remove].
CliEdit parse_edit(const std::string& spec) {
  const auto bad = [&] {
    return std::runtime_error("--edit: expected "
                              "<layer>:<x0>,<y0>,<x1>,<y1>[:remove], got '" +
                              spec + "'");
  };
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) throw bad();
  CliEdit e;
  e.layer = layer_by_name(spec.substr(0, colon));
  std::string rest = spec.substr(colon + 1);
  const std::size_t colon2 = rest.find(':');
  if (colon2 != std::string::npos) {
    if (rest.substr(colon2 + 1) != "remove") throw bad();
    e.remove = true;
    rest = rest.substr(0, colon2);
  }
  Coord c[4];
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t comma = i < 3 ? rest.find(',', pos) : rest.size();
    if (comma == std::string::npos) throw bad();
    try {
      c[i] = std::stoll(rest.substr(pos, comma - pos));
    } catch (const std::exception&) {
      throw bad();
    }
    pos = comma + 1;
  }
  e.rect = Rect{c[0], c[1], c[2], c[3]};
  if (e.rect.is_empty()) throw std::runtime_error("--edit: empty rect");
  return e;
}

LithoFastMode parse_litho_fast(const std::string& s) {
  if (s == "auto") return LithoFastMode::kAuto;
  if (s == "fft") return LithoFastMode::kFft;
  if (s == "direct") return LithoFastMode::kDirect;
  if (s == "off") return LithoFastMode::kOff;
  throw std::runtime_error("--litho-fast: expected auto|fft|direct|off, got '" +
                           s + "'");
}

void print_flow_report(const std::string& title, const DfmFlowReport& rep) {
  Table t(title);
  t.set_header({"technique", "score", "signal"});
  for (const MetricScore& m : rep.scorecard.metrics) {
    t.add_row({m.name, Table::num(m.value), m.detail});
  }
  t.print();
  flow_trace_table(rep.trace).print();
  std::printf("composite: %.3f\n", rep.scorecard.composite());
}

int cmd_flow(int argc, char** argv) {
  // Strip the flow-local options.
  std::string json_path;
  std::string trace_path;
  std::string passes_arg;
  std::string litho_fast_arg;
  std::string budget_arg;
  std::string shards_arg;
  std::string shard_bin_arg;
  std::string shard_trace_dir;
  bool stream = false;
  std::vector<CliEdit> edits;
  for (int i = 2; i < argc;) {
    const auto eat2 = [&](std::string& into) {
      into = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
    };
    const auto eat1 = [&] {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      argc -= 1;
    };
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      eat2(json_path);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      eat2(trace_path);
    } else if (std::strcmp(argv[i], "--passes") == 0 && i + 1 < argc) {
      eat2(passes_arg);
    } else if (std::strcmp(argv[i], "--litho-fast") == 0 && i + 1 < argc) {
      eat2(litho_fast_arg);
    } else if (std::strcmp(argv[i], "--memory-budget") == 0 && i + 1 < argc) {
      eat2(budget_arg);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      eat2(shards_arg);
    } else if (std::strcmp(argv[i], "--shard-bin") == 0 && i + 1 < argc) {
      eat2(shard_bin_arg);
    } else if (std::strcmp(argv[i], "--shard-trace-dir") == 0 &&
               i + 1 < argc) {
      eat2(shard_trace_dir);
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      stream = true;
      eat1();
    } else if (std::strcmp(argv[i], "--edit") == 0 && i + 1 < argc) {
      std::string spec;
      eat2(spec);
      edits.push_back(parse_edit(spec));
    } else {
      ++i;
    }
  }
  if (argc < 3) {
    throw std::runtime_error(
        "usage: dfmkit flow [--json <path>] [--trace-out <path>] "
        "[--passes a,b,...] [--litho-fast auto|fft|direct|off] "
        "[--memory-budget <bytes|K|M|G>] [--stream] "
        "[--shards N] [--shard-bin <path>] [--shard-trace-dir <dir>] "
        "[--edit <layer>:<x0>,<y0>,<x1>,<y1>[:remove]]... <in.gds> [top]");
  }
  if (!trace_path.empty() && !telemetry::compiled_in()) {
    std::fprintf(stderr,
                 "dfmkit: --trace-out: telemetry was compiled out "
                 "(DFMKIT_TELEMETRY=OFF); the trace will be empty\n");
  }
  // Span recording only pays for itself when someone asked for output;
  // metrics counters are always live (they are the cheap part).
  if (!trace_path.empty()) {
    telemetry::set_thread_name("main");
    telemetry::set_enabled(true);
  }
  DfmFlowOptions opt;
  opt.tech = Tech::standard();
  opt.model.sigma = 25;
  opt.model.px = 5;
  opt.threads = g_threads;
  if (!litho_fast_arg.empty()) opt.litho_fast = parse_litho_fast(litho_fast_arg);
  if (!budget_arg.empty() &&
      !parse_byte_size(budget_arg, &opt.memory_budget)) {
    throw std::runtime_error("--memory-budget: expected a byte size like "
                             "64M, got '" +
                             budget_arg + "'");
  }
  for (std::size_t pos = 0; pos < passes_arg.size();) {
    std::size_t comma = passes_arg.find(',', pos);
    if (comma == std::string::npos) comma = passes_arg.size();
    const std::string name = passes_arg.substr(pos, comma - pos);
    if (!name.empty()) {
      if (canonical_flow_pass(name).empty()) {
        throw std::runtime_error("--passes: unknown pass '" + name + "'");
      }
      opt.passes.push_back(name);
    }
    pos = comma + 1;
  }

  // --shards N: fan unit-parallel work (min-width DRC, pattern sites,
  // litho tiles) out to N shard-serve worker processes, each hydrating
  // its spatial window straight from the layout file. Reports are
  // byte-identical to the unsharded run at any shard count. Workers
  // serve the file's own top cell, so an explicit [top] argument falls
  // back to the unsharded path.
  std::unique_ptr<dfm::shard::RemoteShardBackend> shard_backend;
  long shards = 0;
  if (!shards_arg.empty()) {
    char* end = nullptr;
    shards = std::strtol(shards_arg.c_str(), &end, 10);
    if (end == shards_arg.c_str() || *end != '\0' || shards < 0) {
      throw std::runtime_error("--shards: not a count: '" + shards_arg + "'");
    }
  }
  if (shards > 0 && !stream && argc > 3) {
    std::fprintf(stderr,
                 "dfmkit: --shards: explicit top cell requested; workers "
                 "serve the file's top — running unsharded\n");
    shards = 0;
  }
  if (shards > 0) {
    dfm::shard::RemoteShardConfig sc;
    sc.worker.tech = opt.tech;
    sc.worker.model = opt.model;
    sc.worker.litho_tile = opt.litho_tile;
    sc.worker.litho_edge_tolerance = opt.litho_edge_tolerance;
    sc.worker.litho_fast = opt.litho_fast;
    sc.layout_path = argv[2];
    sc.binary = shard_bin_arg.empty() ? dfm::shard::self_executable_path()
                                      : shard_bin_arg;
    sc.socket_dir = dfm::shard::make_shard_scratch_dir();
    sc.shards = static_cast<int>(shards);
    sc.trace_dir = shard_trace_dir;
    const std::string scratch = sc.socket_dir;
    shard_backend = std::make_unique<dfm::shard::RemoteShardBackend>(
        dfm::shard::shard_extent_of(sc.layout_path), std::move(sc));
    opt.shards = shard_backend.get();
    std::printf("sharding: %zu workers, %dx%d grid, halo %lld (scratch %s)\n",
                shard_backend->shard_count(), shard_backend->plan().nx,
                shard_backend->plan().ny,
                static_cast<long long>(shard_backend->plan().halo),
                scratch.c_str());
  }

  // Shared tail for both modes: the metrics snapshot rides along in the
  // --json document, and --trace-out gets the drained span timeline.
  const auto write_outputs = [&](const DfmFlowReport& rep) {
    const telemetry::MetricsSnapshot metrics = telemetry::metrics_snapshot();
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) throw std::runtime_error("cannot write " + json_path);
      out << flow_trace_json(rep, metrics.empty() ? nullptr : &metrics);
      std::printf("wrote %s\n", json_path.c_str());
    }
    if (!trace_path.empty()) {
      telemetry::set_enabled(false);
      const telemetry::TraceSnapshot trace = telemetry::drain();
      std::ofstream out(trace_path);
      if (!out) throw std::runtime_error("cannot write " + trace_path);
      out << telemetry::chrome_trace_json(trace, metrics);
      std::printf("wrote %s (%zu spans, %u threads, max depth %u)\n",
                  trace_path.c_str(), trace.total_events(),
                  static_cast<unsigned>(trace.threads.size()),
                  trace.max_depth());
    }
  };

  const auto print_budget = [&](const SnapshotBudget& b) {
    if (b.limit() == 0 && b.evictions() == 0) return;
    std::printf(
        "snapshot budget: limit=%zu peak=%zu current=%zu "
        "hydrations=%llu evictions=%llu rehydrations=%llu\n",
        b.limit(), b.peak(), b.current(),
        static_cast<unsigned long long>(b.hydrations()),
        static_cast<unsigned long long>(b.evictions()),
        static_cast<unsigned long long>(b.rehydrations()));
  };

  const auto run_edits = [&](DfmFlowSession& session,
                             const std::string& title) {
    print_flow_report("DFM scoreboard: " + title, session.report());
    for (std::size_t i = 0; i < edits.size(); ++i) {
      LayoutDelta delta;
      if (edits[i].remove) {
        delta.remove(edits[i].layer, edits[i].rect);
      } else {
        delta.add(edits[i].layer, edits[i].rect);
      }
      const DfmFlowReport& rep = session.apply(delta);
      print_flow_report("after edit " + std::to_string(i + 1), rep);
    }
    print_budget(session.snapshot().budget());
    write_outputs(session.report());
  };

  if (stream) {
    // Out-of-core mode: never materializes the cell hierarchy — the
    // snapshot hydrates windows straight from the mmap'd file. The top
    // cell comes from the stream index, so the [top] argument does not
    // apply here.
    DfmFlowSession session(open_stream_source(argv[2]), opt);
    run_edits(session, std::string(argv[2]) + " (stream)");
    return 0;
  }

  const Library lib = read_layout(argv[2]);
  const std::uint32_t top = pick_top(lib, argc, argv, 3);
  if (edits.empty()) {
    const DfmFlowReport rep = run_dfm_flow(lib, top, opt);
    print_flow_report("DFM scoreboard: " + lib.cell(top).name(), rep);
    write_outputs(rep);
    return 0;
  }

  // Edit mode: run cold once, then push each edit through the
  // incremental session — every report is bit-identical to a cold
  // re-run over the edited layout, but only the damage recomputes.
  DfmFlowSession session(lib, top, opt);
  run_edits(session, lib.cell(top).name());
  return 0;
}

int cmd_fix(int argc, char** argv) {
  std::string json_path;
  std::string out_path;
  std::string moves_arg;
  bool expect_improvement = false;
  FixOptions fix;
  for (int i = 2; i < argc;) {
    const auto eat2 = [&](std::string& into) {
      into = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
    };
    const auto eat1 = [&] {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      argc -= 1;
    };
    if (std::strcmp(argv[i], "--max-iters") == 0 && i + 1 < argc) {
      std::string v;
      eat2(v);
      fix.max_iters = std::stoi(v);
    } else if (std::strcmp(argv[i], "--min-gain") == 0 && i + 1 < argc) {
      std::string v;
      eat2(v);
      fix.min_gain = std::stod(v);
    } else if (std::strcmp(argv[i], "--moves") == 0 && i + 1 < argc) {
      eat2(moves_arg);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      eat2(json_path);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      eat2(out_path);
    } else if (std::strcmp(argv[i], "--expect-improvement") == 0) {
      expect_improvement = true;
      eat1();
    } else {
      ++i;
    }
  }
  if (argc < 3) {
    throw std::runtime_error(
        "usage: dfmkit fix [--max-iters N] [--min-gain G] "
        "[--moves pattern_via,via_double,...] [--json <path>] "
        "[--out <path>] [--expect-improvement] <in.gds> [top]");
  }
  for (std::size_t pos = 0; pos < moves_arg.size();) {
    std::size_t comma = moves_arg.find(',', pos);
    if (comma == std::string::npos) comma = moves_arg.size();
    const std::string name = moves_arg.substr(pos, comma - pos);
    if (!name.empty()) {
      if (!parse_fix_kind(name)) {
        throw std::runtime_error(
            "--moves: unknown move '" + name +
            "' (pattern_via|pattern_pinch|via_double|spread|retarget|fill)");
      }
      fix.moves.push_back(name);
    }
    pos = comma + 1;
  }

  DfmFlowOptions opt;
  opt.tech = Tech::standard();
  opt.model.sigma = 25;
  opt.model.px = 5;
  opt.threads = g_threads;
  opt.fix = fix;

  const Library lib = read_layout(argv[2]);
  const std::uint32_t top = pick_top(lib, argc, argv, 3);
  DfmFlowSession session(lib, top, opt);
  print_flow_report("before fix: " + lib.cell(top).name(), session.report());

  const FixOutcome out = FixEngine::fix(session, opt.fix);

  Table t("fix loop");
  t.set_header({"iter", "kind", "rule", "site", "result", "gain"});
  for (const FixStep& s : out.steps) {
    t.add_row({std::to_string(s.iter), fix_kind_name(s.kind), s.rule,
               to_string(s.site),
               s.accepted ? "accepted" : "rejected(" + s.reject + ")",
               Table::num(s.gain)});
  }
  t.print();

  print_flow_report("after fix", session.report());
  std::printf(
      "fix: %d iteration(s), %d proposed, %d accepted, %d rejected, "
      "composite %.3f -> %.3f\n",
      out.iterations, out.proposed, out.accepted, out.rejected,
      out.composite_before, out.composite_after);

  if (!json_path.empty()) {
    std::ofstream o(json_path);
    if (!o) throw std::runtime_error("cannot write " + json_path);
    o << fix_outcome_json(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!out_path.empty()) {
    // The repaired layout, flat: the post-fix snapshot's layers as one
    // cell (references were flattened when the session snapshot was
    // built).
    Cell cell(lib.cell(top).name());
    for (const LayerKey k : LayoutSnapshot::standard_flow_layers()) {
      const Region& r = session.snapshot().layer(k);
      if (!r.empty()) cell.add(k, r);
    }
    Library fixed(lib.name());
    fixed.add_cell(std::move(cell));
    write_layout(fixed, out_path);
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (expect_improvement &&
      !(out.accepted > 0 && out.composite_after > out.composite_before)) {
    std::fprintf(stderr, "dfmkit fix: composite did not improve\n");
    return 1;
  }
  return 0;
}

int cmd_catalog(int argc, char** argv) {
  if (argc < 3) throw std::runtime_error("usage: dfmkit catalog <in.gds> [top]");
  const Library lib = read_layout(argv[2]);
  const std::uint32_t top = pick_top(lib, argc, argv, 3);
  const std::vector<LayerKey> on = {layers::kVia1, layers::kMetal1,
                                    layers::kMetal2};
  ThreadPool pool(g_threads);
  const LayoutSnapshot snap(lib, top, on, &pool);
  const PatternCatalog cat = build_catalog(snap, on, layers::kVia1, 120, &pool);
  std::printf("windows=%llu classes=%zu top-10=%.1f%%\n",
              static_cast<unsigned long long>(cat.total_windows()),
              cat.class_count(), 100.0 * cat.top_k_coverage(10));
  int rank = 0;
  for (const CatalogEntry* e : cat.by_frequency()) {
    if (++rank > 5) break;
    std::printf("#%d count=%llu\n%s", rank,
                static_cast<unsigned long long>(e->count),
                e->pattern.to_ascii().c_str());
  }
  return 0;
}

int cmd_svg(int argc, char** argv) {
  if (argc < 4) {
    throw std::runtime_error("usage: dfmkit svg <in.gds> <out.svg> [top]");
  }
  const Library lib = read_layout(argv[2]);
  const std::uint32_t top = pick_top(lib, argc, argv, 4);
  const std::vector<LayerKey> order = lib.layers();
  const LayoutSnapshot snap(lib, top, order);
  SvgWriter w(lib.bbox(top), 1200);
  for (const LayerKey k : order) {
    w.add_layer(snap.layer(k), SvgWriter::default_color(k));
  }
  w.write_file(argv[3]);
  std::printf("wrote %s\n", argv[3]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Strip global options (accepted anywhere) before command dispatch.
    for (int i = 1; i < argc;) {
      if (std::strncmp(argv[i], "--threads", 9) != 0) {
        ++i;
        continue;
      }
      const char* val = nullptr;
      int eat = 0;
      if (argv[i][9] == '=') {
        val = argv[i] + 10;
        eat = 1;
      } else if (argv[i][9] == '\0' && i + 1 < argc) {
        val = argv[i + 1];
        eat = 2;
      } else if (argv[i][9] == '\0') {
        throw std::runtime_error("--threads needs a value");
      } else {
        ++i;  // some other --threads* token; leave it for the subcommand
        continue;
      }
      char* end = nullptr;
      const unsigned long n = std::strtoul(val, &end, 10);
      if (end == val || *end != '\0') {
        throw std::runtime_error(std::string("--threads: not a number: '") +
                                 val + "'");
      }
      g_threads = static_cast<unsigned>(n);
      for (int j = i; j + eat < argc; ++j) argv[j] = argv[j + eat];
      argc -= eat;
    }
    if (argc < 2) {
      std::fprintf(stderr,
                   "usage: dfmkit [--threads N] "
                   "<gen|info|drc|drcplus|flow|fix|catalog|svg|serve|"
                   "shard-serve|client|top|trace-merge> ...\n");
      return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--version" || cmd == "version") {
      std::printf("%s\n", dfm::version_string().c_str());
      return 0;
    }
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "info") return cmd_info(argc, argv);
    if (cmd == "drc") return cmd_drc(argc, argv, false);
    if (cmd == "drcplus") return cmd_drc(argc, argv, true);
    if (cmd == "flow") return cmd_flow(argc, argv);
    if (cmd == "fix") return cmd_fix(argc, argv);
    if (cmd == "catalog") return cmd_catalog(argc, argv);
    if (cmd == "svg") return cmd_svg(argc, argv);
    if (cmd == "serve") return dfm::cli::cmd_serve(argc, argv, g_threads);
    if (cmd == "shard-serve") {
      return dfm::cli::cmd_shard_serve(argc, argv, g_threads);
    }
    if (cmd == "client") return dfm::cli::cmd_client(argc, argv);
    if (cmd == "top") return dfm::cli::cmd_top(argc, argv);
    if (cmd == "trace-merge") return dfm::cli::cmd_trace_merge(argc, argv);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dfmkit: %s\n", e.what());
    return 2;
  }
}
