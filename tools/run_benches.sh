#!/bin/sh
# Run every bench binary and consolidate the results.
#
# Usage: tools/run_benches.sh [build-dir]   (default: build)
#
# Each bench's stdout goes to <build>/bench_logs/<name>.log; the script
# then runs `dfmkit flow --json` on a generated demo design and writes
# BENCH_flow.json at the repository root: the flow's per-pass trace +
# scorecard under "flow", per-bench wall time and exit status under
# "benches", the machine the numbers came from under "host", and the
# telemetry overhead series (parsed from bench_o1_telemetry's TELEM
# lines) under "telemetry_overhead", the litho fast-path numbers
# (parsed from bench_t6_hotspot's LITHO line: direct vs FFT vs
# FFT+prefilter ms, skip ratio, speedups) under "litho", and the
# served-flow latency series (parsed from bench_s2_service's SERVICE
# lines) under "service", and the out-of-core memory numbers under
# "memory" (bench_f4_outofcore's MEMORY lines — hydrated/budget/peak
# snapshot bytes, evictions — plus the flow run's peak RSS and
# snapshot byte gauges lifted from its telemetry output), and the fix
# loop's repair numbers (bench_f5_fix's FIX line: proposals, accepts,
# violations and composite before/after, thread/service determinism)
# under "fix", and the distributed-sharding scaling series
# (bench_s3_shard's SHARD lines: spawn+open cost, cold/incremental wall
# time vs unsharded, efficiency, report equality) under "shard". The
# revision stamp comes from `dfmkit --version` (embedded at build time),
# not from git at bench time. Requires an existing build
# (cmake --build <build-dir>).
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

build="${1:-build}"
if [ ! -d "$build/bench" ]; then
  echo "error: $build/bench not found — build the project first" >&2
  exit 2
fi

logdir="$build/bench_logs"
mkdir -p "$logdir"

# Wall time in milliseconds. %N is GNU date; busybox fallback is seconds.
now_ms() {
  if date +%s%N | grep -qv N; then
    echo $(( $(date +%s%N) / 1000000 ))
  else
    echo $(( $(date +%s) * 1000 ))
  fi
}

bench_rows=""
for bin in "$build"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  log="$logdir/$name.log"
  printf '== %s\n' "$name"
  t0=$(now_ms)
  status=0
  "$bin" >"$log" 2>&1 || status=$?
  t1=$(now_ms)
  if [ "$status" -ne 0 ]; then
    echo "   FAILED (exit $status) — see $log" >&2
  fi
  row="    {\"name\": \"$name\", \"ms\": $((t1 - t0)), \"exit\": $status}"
  bench_rows="${bench_rows:+$bench_rows,
}$row"
done

# The flow trace on a fresh demo design, via the CLI's --json emitter.
demo="$logdir/bench_demo.gds"
flow_json="$logdir/flow_trace.json"
"$build/tools/dfmkit" gen "$demo" 42 >"$logdir/dfmkit_gen.log"
"$build/tools/dfmkit" flow --json "$flow_json" "$demo" \
  >"$logdir/dfmkit_flow.log"

# Stamp the exact build the numbers came from, via the binary itself:
# `dfmkit --version` prints "dfmkit <rev> (<config>)" with the revision
# (plus "-dirty" for local edits) embedded at build time by
# cmake/GenerateVersion.cmake. That ties the numbers to the bits that
# produced them — a stale build can no longer report a fresh hash.
revision="unknown"
build_config=""
if ver="$("$build/tools/dfmkit" --version 2>/dev/null)"; then
  rev="$(printf '%s' "$ver" | sed -n 's/^dfmkit \([^ ]*\).*/\1/p')"
  [ -z "$rev" ] || revision="$rev"
  build_config="$(printf '%s' "$ver" | sed -n 's/^[^(]*(\(.*\))$/\1/p')"
fi

# Benchmarks without the machine are noise: record CPU model, core count
# and RAM next to the numbers. /proc is Linux; everything degrades to
# "unknown"/0 elsewhere.
cpu_model="$(sed -n 's/^model name[^:]*: //p' /proc/cpuinfo 2>/dev/null \
             | head -n 1)"
[ -n "$cpu_model" ] || cpu_model="unknown"
cores="$(nproc 2>/dev/null || echo 0)"
mem_kb="$(sed -n 's/^MemTotal: *\([0-9]*\).*/\1/p' /proc/meminfo 2>/dev/null)"
[ -n "$mem_kb" ] || mem_kb=0
os="$(uname -sr 2>/dev/null || echo unknown)"

# The telemetry overhead series: bench_o1_telemetry prints one parseable
# "TELEM key=value ..." line per thread count.
telem_rows=""
telem_log="$logdir/bench_o1_telemetry.log"
if [ -f "$telem_log" ]; then
  while IFS= read -r line; do
    case "$line" in TELEM\ *) ;; *) continue ;; esac
    threads=0 base=0 telem=0 over=0 spans=0 depth=0 ident=0
    for tok in $line; do
      case "$tok" in
        threads=*)      threads="${tok#threads=}" ;;
        base_ms=*)      base="${tok#base_ms=}" ;;
        telem_ms=*)     telem="${tok#telem_ms=}" ;;
        overhead_pct=*) over="${tok#overhead_pct=}" ;;
        spans=*)        spans="${tok#spans=}" ;;
        depth=*)        depth="${tok#depth=}" ;;
        identical=*)    ident="${tok#identical=}" ;;
      esac
    done
    row="    {\"threads\": $threads, \"base_ms\": $base,"
    row="$row \"telem_ms\": $telem, \"overhead_pct\": $over,"
    row="$row \"spans\": $spans, \"depth\": $depth, \"identical\": $ident}"
    telem_rows="${telem_rows:+$telem_rows,
}$row"
  done < "$telem_log"
fi

# Litho fast-path numbers: bench_t6_hotspot prints one parseable
# "LITHO key=value ..." line (direct vs FFT vs FFT+prefilter, skip
# ratio, speedups).
litho_rows=""
litho_log="$logdir/bench_t6_hotspot.log"
if [ -f "$litho_log" ]; then
  while IFS= read -r line; do
    case "$line" in LITHO\ *) ;; *) continue ;; esac
    tiles=0 hotspots=0 direct=0 fft=0 fast=0 skipped=0
    ratio=0 fft_sp=0 fast_sp=0
    for tok in $line; do
      case "$tok" in
        tiles=*)        tiles="${tok#tiles=}" ;;
        hotspots=*)     hotspots="${tok#hotspots=}" ;;
        direct_ms=*)    direct="${tok#direct_ms=}" ;;
        fft_ms=*)       fft="${tok#fft_ms=}" ;;
        fast_ms=*)      fast="${tok#fast_ms=}" ;;
        skipped=*)      skipped="${tok#skipped=}" ;;
        skip_ratio=*)   ratio="${tok#skip_ratio=}" ;;
        fft_speedup=*)  fft_sp="${tok#fft_speedup=}" ;;
        fast_speedup=*) fast_sp="${tok#fast_speedup=}" ;;
      esac
    done
    row="    {\"tiles\": $tiles, \"hotspots\": $hotspots,"
    row="$row \"direct_ms\": $direct, \"fft_ms\": $fft, \"fast_ms\": $fast,"
    row="$row \"skipped\": $skipped, \"skip_ratio\": $ratio,"
    row="$row \"fft_speedup\": $fft_sp, \"fast_speedup\": $fast_sp}"
    litho_rows="${litho_rows:+$litho_rows,
}$row"
  done < "$litho_log"
fi

# Served-flow latency series: bench_s2_service prints one parseable
# "SERVICE key=value ..." line per (clients, mode) cell.
service_rows=""
service_log="$logdir/bench_s2_service.log"
if [ -f "$service_log" ]; then
  while IFS= read -r line; do
    case "$line" in SERVICE\ *) ;; *) continue ;; esac
    clients=0 mode=unknown requests=0 p50=0 p95=0 p99=0 trim=0
    direct=0 qmax=0 bp=0 errs=0
    for tok in $line; do
      case "$tok" in
        clients=*)         clients="${tok#clients=}" ;;
        mode=*)            mode="${tok#mode=}" ;;
        requests=*)        requests="${tok#requests=}" ;;
        p50_ms=*)          p50="${tok#p50_ms=}" ;;
        p95_ms=*)          p95="${tok#p95_ms=}" ;;
        p99_ms=*)          p99="${tok#p99_ms=}" ;;
        trimmed_mean_ms=*) trim="${tok#trimmed_mean_ms=}" ;;
        direct_ms=*)       direct="${tok#direct_ms=}" ;;
        queue_max=*)       qmax="${tok#queue_max=}" ;;
        backpressure=*)    bp="${tok#backpressure=}" ;;
        errors=*)          errs="${tok#errors=}" ;;
      esac
    done
    row="    {\"clients\": $clients, \"mode\": \"$mode\","
    row="$row \"requests\": $requests, \"p50_ms\": $p50, \"p95_ms\": $p95,"
    row="$row \"p99_ms\": $p99,"
    row="$row \"trimmed_mean_ms\": $trim, \"direct_ms\": $direct,"
    row="$row \"queue_max\": $qmax, \"backpressure\": $bp,"
    row="$row \"errors\": $errs}"
    service_rows="${service_rows:+$service_rows,
}$row"
  done < "$service_log"
fi

# Out-of-core memory numbers. bench_f4_outofcore prints one parseable
# "MEMORY key=value" line per gauge (fully-hydrated bytes, budget, peak
# snapshot bytes and eviction counts per thread count); the flow run
# above contributes its peak RSS and snapshot byte gauges, which
# dfmkit's --json emitter carries in the telemetry metrics block as
# "process.peak_rss_kb" / "snapshot.*_bytes". Each becomes one
# {"key", "value"} row.
memory_rows=""
add_memory_row() {
  mrow="    {\"key\": \"$1\", \"value\": $2}"
  memory_rows="${memory_rows:+$memory_rows,
}$mrow"
}
mem_log="$logdir/bench_f4_outofcore.log"
if [ -f "$mem_log" ]; then
  while IFS= read -r line; do
    case "$line" in MEMORY\ *) ;; *) continue ;; esac
    kv="${line#MEMORY }"
    case "$kv" in *=*) add_memory_row "${kv%%=*}" "${kv#*=}" ;; esac
  done < "$mem_log"
fi
if [ -f "$flow_json" ]; then
  gauges="$(grep -o \
    '"\(process\.peak_rss_kb\|snapshot\.[a-z_]*_bytes\)": [0-9.e+-]*' \
    "$flow_json" 2>/dev/null || true)"
  if [ -n "$gauges" ]; then
    # Walk line-by-line in the current shell (no pipe, no subshell) so
    # the accumulated rows persist.
    old_ifs="$IFS"; IFS='
'
    for g in $gauges; do
      gname="${g%%\": *}"; gname="${gname#\"}"
      gval="${g##*: }"
      add_memory_row "flow_$gname" "$gval"
    done
    IFS="$old_ifs"
  fi
fi

# Distributed sharding scaling series: bench_s3_shard prints one
# parseable "SHARD key=value ..." line per shard count (worker
# spawn+open cost, cold/incremental wall time vs the unsharded flow,
# scaling efficiency, report-equality bit).
shard_rows=""
shard_log="$logdir/bench_s3_shard.log"
if [ -f "$shard_log" ]; then
  while IFS= read -r line; do
    case "$line" in SHARD\ *) ;; *) continue ;; esac
    shards=0 open=0 cold=0 inc=0 bcold=0 binc=0 sp=0 eff=0 ident=0
    for tok in $line; do
      case "$tok" in
        shards=*)       shards="${tok#shards=}" ;;
        open_ms=*)      open="${tok#open_ms=}" ;;
        cold_ms=*)      cold="${tok#cold_ms=}" ;;
        inc_ms=*)       inc="${tok#inc_ms=}" ;;
        base_cold_ms=*) bcold="${tok#base_cold_ms=}" ;;
        base_inc_ms=*)  binc="${tok#base_inc_ms=}" ;;
        speedup=*)      sp="${tok#speedup=}" ;;
        efficiency=*)   eff="${tok#efficiency=}" ;;
        identical=*)    ident="${tok#identical=}" ;;
      esac
    done
    row="    {\"shards\": $shards, \"open_ms\": $open, \"cold_ms\": $cold,"
    row="$row \"inc_ms\": $inc, \"base_cold_ms\": $bcold,"
    row="$row \"base_inc_ms\": $binc, \"speedup\": $sp,"
    row="$row \"efficiency\": $eff, \"identical\": $ident}"
    shard_rows="${shard_rows:+$shard_rows,
}$row"
  done < "$shard_log"
fi

# The fix loop's repair numbers: bench_f5_fix prints one parseable
# "FIX key=value ..." summary line (proposal/accept counts, violations
# and composite before/after, thread + service determinism bits).
fix_rows=""
fix_log="$logdir/bench_f5_fix.log"
if [ -f "$fix_log" ]; then
  while IFS= read -r line; do
    case "$line" in FIX\ *) ;; *) continue ;; esac
    design=unknown proposed=0 accepted=0 rejected=0 iters=0
    vb=0 va=0 cb=0 ca=0 cold=0 loop=0 svc=0 ident=0 svc_ident=0
    for tok in $line; do
      case "$tok" in
        design=*)            design="${tok#design=}" ;;
        proposed=*)          proposed="${tok#proposed=}" ;;
        accepted=*)          accepted="${tok#accepted=}" ;;
        rejected=*)          rejected="${tok#rejected=}" ;;
        iterations=*)        iters="${tok#iterations=}" ;;
        violations_before=*) vb="${tok#violations_before=}" ;;
        violations_after=*)  va="${tok#violations_after=}" ;;
        composite_before=*)  cb="${tok#composite_before=}" ;;
        composite_after=*)   ca="${tok#composite_after=}" ;;
        cold_ms=*)           cold="${tok#cold_ms=}" ;;
        loop_ms=*)           loop="${tok#loop_ms=}" ;;
        service_ms=*)        svc="${tok#service_ms=}" ;;
        identical=*)         ident="${tok#identical=}" ;;
        service_identical=*) svc_ident="${tok#service_identical=}" ;;
      esac
    done
    row="    {\"design\": \"$design\", \"proposed\": $proposed,"
    row="$row \"accepted\": $accepted, \"rejected\": $rejected,"
    row="$row \"iterations\": $iters, \"violations_before\": $vb,"
    row="$row \"violations_after\": $va, \"composite_before\": $cb,"
    row="$row \"composite_after\": $ca, \"cold_ms\": $cold,"
    row="$row \"loop_ms\": $loop, \"service_ms\": $svc,"
    row="$row \"identical\": $ident, \"service_identical\": $svc_ident}"
    fix_rows="${fix_rows:+$fix_rows,
}$row"
  done < "$fix_log"
fi

{
  echo '{'
  printf '  "revision": "%s",\n' "$revision"
  printf '  "build_config": "%s",\n' "$build_config"
  echo '  "host": {'
  printf '    "cpu": "%s",\n' "$cpu_model"
  printf '    "cores": %s,\n' "$cores"
  printf '    "mem_total_kb": %s,\n' "$mem_kb"
  printf '    "os": "%s"\n' "$os"
  echo '  },'
  echo '  "benches": ['
  printf '%s\n' "$bench_rows"
  echo '  ],'
  echo '  "telemetry_overhead": ['
  printf '%s\n' "$telem_rows"
  echo '  ],'
  echo '  "litho": ['
  printf '%s\n' "$litho_rows"
  echo '  ],'
  echo '  "service": ['
  printf '%s\n' "$service_rows"
  echo '  ],'
  echo '  "memory": ['
  printf '%s\n' "$memory_rows"
  echo '  ],'
  echo '  "fix": ['
  printf '%s\n' "$fix_rows"
  echo '  ],'
  echo '  "shard": ['
  printf '%s\n' "$shard_rows"
  echo '  ],'
  printf '  "flow": '
  # Indent the flow object to nest cleanly.
  sed -e '1s/^/ /' -e '2,$s/^/  /' "$flow_json"
  echo '}'
} > BENCH_flow.json

echo "wrote BENCH_flow.json ($(grep -c '"name"' BENCH_flow.json) entries);" \
     "logs in $logdir/"
