#!/bin/sh
# Build the suite with ThreadSanitizer and run every test.
#
# Usage: tools/run_tsan.sh [address]
#   no argument  -> -DDFMKIT_SANITIZE=thread  (data races, lock order)
#   "address"    -> -DDFMKIT_SANITIZE=address (heap misuse in the fuzz corpus)
#
# The sanitizer build lives in its own tree (build-tsan/ or build-asan/)
# so the regular build/ stays untouched. Run from the repository root.
set -eu

mode="${1:-thread}"
case "$mode" in
  thread)  dir=build-tsan ;;
  address) dir=build-asan ;;
  *) echo "usage: $0 [thread|address]" >&2; exit 2 ;;
esac

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "-DDFMKIT_SANITIZE=$mode"
cmake --build "$dir" -j "$(nproc)"

# halt_on_error makes a race fail the test run instead of just logging.
if [ "$mode" = thread ]; then
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
else
  ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
fi
